package corpus

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// splitAll drains the splitter, returning the documents and the
// terminating error (io.EOF for a clean end). Per-document
// *DocTooLargeError failures are recorded as empty-string slots.
func splitAll(t *testing.T, input string, maxDoc int64) ([]string, error) {
	t.Helper()
	sp := NewSplitter(strings.NewReader(input))
	sp.SetMaxDocBytes(maxDoc)
	var docs []string
	var buf []byte
	for {
		d, err := sp.Next(buf)
		var tooBig *DocTooLargeError
		if errors.As(err, &tooBig) {
			docs = append(docs, "")
			continue
		}
		if err != nil {
			return docs, err
		}
		docs = append(docs, string(d))
		buf = d
	}
}

func TestSplitterBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string
	}{
		{"empty", "", nil},
		{"whitespace only", " \n\t ", nil},
		{"single", "<a><b>x</b></a>", []string{"<a><b>x</b></a>"}},
		{"two adjacent", "<a/><b/>", []string{"<a/>", "<b/>"}},
		{"newline separated", "<a>1</a>\n<b>2</b>\n", []string{"<a>1</a>", "<b>2</b>"}},
		{"prolog attribution", `<?xml version="1.0"?><a/><?xml version="1.0"?><b/>`,
			[]string{`<?xml version="1.0"?><a/>`, `<?xml version="1.0"?><b/>`}},
		{"comment between docs joins the next", "<a/><!-- note --><b/>",
			[]string{"<a/>", "<!-- note --><b/>"}},
		{"trailing comment discarded", "<a/><!-- bye -->", []string{"<a/>"}},
		{"trailing PI discarded", "<a/><?pi data?>", []string{"<a/>"}},
		{"doctype prolog", "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/><b/>",
			[]string{"<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>", "<b/>"}},
		{"doctype entity value with angle brackets", `<!DOCTYPE a [<!ENTITY lt "<">]><a/><b/><c/>`,
			[]string{`<!DOCTYPE a [<!ENTITY lt "<">]><a/>`, "<b/>", "<c/>"}},
		{"doctype subset comment with apostrophe", "<!DOCTYPE a [<!-- don't -->]><a/><b/>",
			[]string{"<!DOCTYPE a [<!-- don't -->]><a/>", "<b/>"}},
		{"doctype subset comment with brackets", "<!DOCTYPE a [<!-- <x> \" > -->]><a/><b/>",
			[]string{"<!DOCTYPE a [<!-- <x> \" > -->]><a/>", "<b/>"}},
		{"doctype subset pi with quote", "<!DOCTYPE a [<?p don't ?>]><a/><b/>",
			[]string{"<!DOCTYPE a [<?p don't ?>]><a/>", "<b/>"}},
		{"gt inside attribute value", `<a x="1>2"><c/></a><b/>`,
			[]string{`<a x="1>2"><c/></a>`, "<b/>"}},
		{"gt inside single-quoted attr", `<a x='>'/><b/>`, []string{`<a x='>'/>`, "<b/>"}},
		{"fake close tag inside comment", "<a><!-- </a> --></a><b/>",
			[]string{"<a><!-- </a> --></a>", "<b/>"}},
		{"fake tags inside CDATA", "<a><![CDATA[</a><z>]]></a><b/>",
			[]string{"<a><![CDATA[</a><z>]]></a>", "<b/>"}},
		{"cdata bracket edges", "<a><![CDATA[x]]]]><![CDATA[>y]]></a><b/>",
			[]string{"<a><![CDATA[x]]]]><![CDATA[>y]]></a>", "<b/>"}},
		{"bom between docs", "\xEF\xBB\xBF<a/>\n\xEF\xBB\xBF<b/>", []string{"<a/>", "<b/>"}},
		{"truncated final doc", "<a/><b><c>", []string{"<a/>", "<b><c>"}},
		{"truncated mid tag", "<a/><b", []string{"<a/>", "<b"}},
		{"truncated comment surfaces", "<a/><!--oops", []string{"<a/>", "<!--oops"}},
		{"junk tail surfaces", "<a/>junk", []string{"<a/>", "junk"}},
		{"self-closing root with attrs", `<a x="1" y='2'/><b/>`,
			[]string{`<a x="1" y='2'/>`, "<b/>"}},
		{"nested same-name elements", "<a><a></a></a><a/>",
			[]string{"<a><a></a></a>", "<a/>"}},
		{"pi inside doc", "<a><?target d?></a><b/>", []string{"<a><?target d?></a>", "<b/>"}},
		{"question mark inside pi", "<a/><?p a?b??><b/>", []string{"<a/>", "<?p a?b??><b/>"}},
		{"dashes in comment", "<a><!-- - -- ---></a><b/>",
			[]string{"<a><!-- - -- ---></a>", "<b/>"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := splitAll(t, tc.input, 0)
			if err != io.EOF {
				t.Fatalf("terminated with %v, want io.EOF", err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d docs %q, want %d %q", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("doc %d:\n got %q\nwant %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestSplitterMaxDocBytes(t *testing.T) {
	big := "<big>" + strings.Repeat("x", 100) + "</big>"
	input := "<a>1</a>" + big + "<b>2</b>"
	docs, err := splitAll(t, input, 32)
	if err != io.EOF {
		t.Fatalf("terminated with %v", err)
	}
	want := []string{"<a>1</a>", "", "<b>2</b>"}
	if len(docs) != len(want) {
		t.Fatalf("got %q, want %q", docs, want)
	}
	for i := range want {
		if docs[i] != want[i] {
			t.Errorf("doc %d: got %q, want %q", i, docs[i], want[i])
		}
	}
}

func TestSplitterSmallReads(t *testing.T) {
	// One byte per Read: every state-machine transition crosses a fill
	// boundary, including the BOM lookahead.
	input := "\xEF\xBB\xBF<?xml version=\"1.0\"?><a x=\">\"><![CDATA[]]>]]></a> \xEF\xBB\xBF<b><!-- -- --></b>"
	sp := NewSplitter(iotest{r: strings.NewReader(input)})
	var docs []string
	for {
		d, err := sp.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, string(d))
	}
	want := []string{`<?xml version="1.0"?><a x=">"><![CDATA[]]>]]></a>`, "<b><!-- -- --></b>"}
	if len(docs) != 2 || docs[0] != want[0] || docs[1] != want[1] {
		t.Fatalf("got %q, want %q", docs, want)
	}
}

// iotest yields one byte per Read call.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestSplitterZeroByteReads: the io.Reader contract permits (0, nil)
// returns; the BOM lookahead must retry them like the main fill loop,
// not leak an inter-document BOM into the following document.
func TestSplitterZeroByteReads(t *testing.T) {
	sp := NewSplitter(&stutterReader{r: iotest{r: strings.NewReader("<a/>\xEF\xBB\xBF<b/>")}})
	var docs []string
	for {
		d, err := sp.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, string(d))
	}
	want := []string{"<a/>", "<b/>"}
	if len(docs) != 2 || docs[0] != want[0] || docs[1] != want[1] {
		t.Fatalf("got %q, want %q", docs, want)
	}
}

// stutterReader returns (0, nil) before every real read.
type stutterReader struct {
	r    io.Reader
	tick bool
}

func (s *stutterReader) Read(p []byte) (int, error) {
	s.tick = !s.tick
	if s.tick {
		return 0, nil
	}
	return s.r.Read(p)
}

func TestSplitterReadErrorIsTerminal(t *testing.T) {
	boom := errors.New("disk gone")
	sp := NewSplitter(io.MultiReader(strings.NewReader("<a/><b>"), errReader{boom}))
	if d, err := sp.Next(nil); err != nil || string(d) != "<a/>" {
		t.Fatalf("first doc: %q, %v", d, err)
	}
	if _, err := sp.Next(nil); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the read error", err)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// capReader yields at most k bytes per Read, bounding the splitter's
// window so interior runs straddle refills at every offset.
type capReader struct {
	r io.Reader
	k int
}

func (c capReader) Read(p []byte) (int, error) {
	if c.k > 0 && len(p) > c.k {
		p = p[:c.k]
	}
	return c.r.Read(p)
}

// TestSplitterBoundarySizeSweep: the run-scanning fast paths (comment,
// PI, CDATA, quoted-value, declaration, and tag interiors) must frame
// identically whether a run arrives whole or split at any refill
// boundary. The same stream is framed at read sizes 1, 2, 7, the
// structural index's 64-byte block edges (63/64/65/127/128), 4096, and
// unbounded, and every framing must match.
func TestSplitterBoundarySizeSweep(t *testing.T) {
	input := strings.Join([]string{
		`<?xml version="1.0"?><!DOCTYPE a [<!ENTITY gt ">"><!-- <c> --><?p >?>]><a k="x > y">text<!-- ` + strings.Repeat("-", 97) + ` --><![CDATA[ ]] >]] ` + strings.Repeat("]", 41) + `]]></a>`,
		`<b><inner attr='<">' x="&amp;"/>` + strings.Repeat("run of text without any markup at all ", 60) + `</b>`,
		`<c/>`,
		`<d><?pi ` + strings.Repeat("?", 33) + `?><e f="g"></e></d>`,
	}, "\n")

	frame := func(k int) []string {
		t.Helper()
		sp := NewSplitter(capReader{r: strings.NewReader(input), k: k})
		var docs []string
		for {
			d, err := sp.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("read size %d: %v", k, err)
			}
			docs = append(docs, string(d))
		}
		return docs
	}

	want := frame(0) // unbounded reads: the all-fast-path framing
	if len(want) != 4 {
		t.Fatalf("unbounded framing found %d docs, want 4: %q", len(want), want)
	}
	for _, k := range []int{1, 2, 7, 63, 64, 65, 127, 128, 4096} {
		got := frame(k)
		if len(got) != len(want) {
			t.Fatalf("read size %d: %d docs, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("read size %d: doc %d diverges\n got  %q\n want %q", k, i, got[i], want[i])
			}
		}
	}
}
