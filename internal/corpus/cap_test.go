package corpus

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRunReadTimeCapBackstop: a document whose size is unknown up
// front (Size=-1) still respects MaxDocBytes at read time.
func TestRunReadTimeCapBackstop(t *testing.T) {
	big := "<d>" + strings.Repeat("x", 4096) + "</d>"
	src := &unknownSizeSource{docs: []string{"<d>ok</d>", big, "<d>ok2</d>"}}
	var errsAt []int
	totals, err := Run(src, Options{Workers: 2, MaxDocBytes: 256},
		func(in io.Reader, outs []io.Writer) (int, error) {
			n, err := io.Copy(outs[0], in)
			return int(n), err
		},
		func(r *Result[int]) error {
			if r.Err != nil {
				errsAt = append(errsAt, r.Index)
				var tooBig *DocTooLargeError
				if !errors.As(r.Err, &tooBig) {
					t.Errorf("doc %d: %v, want DocTooLargeError", r.Index, r.Err)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if totals.Failed != 1 || len(errsAt) != 1 || errsAt[0] != 1 {
		t.Fatalf("failures at %v (totals %+v), want just doc 1", errsAt, totals)
	}
}

// unknownSizeSource serves docs with Size=-1 (stat failed).
type unknownSizeSource struct {
	docs []string
	next int
}

func (u *unknownSizeSource) Next() (Doc, error) {
	if u.next >= len(u.docs) {
		return Doc{}, io.EOF
	}
	data := u.docs[u.next]
	u.next++
	return Doc{
		Name: "nosize",
		Size: -1,
		Open: func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader(data)), nil },
	}, nil
}

func (u *unknownSizeSource) Close() error { return nil }
