// Package obs provides the observability primitives shared by the engine,
// the schedulers, and gcxd: a monotonic run clock, an allocation-free
// lock-free latency histogram, and a stage stopwatch.
//
// Everything on a recording path follows the discipline of
// internal/server/metrics.go — atomics only, no locks, no allocation — so
// instrumented hot paths (the writer's first-byte stamp, per-request
// histogram observes) cost a few atomic operations and nothing else.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// base anchors the process-wide monotonic clock. time.Since on a Time that
// carries a monotonic reading compiles to a nanotime read — no allocation,
// immune to wall-clock steps.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. The zero value is
// reserved as "never": Now is strictly positive for any call made after
// package initialization.
//
//gcxlint:noalloc
func Now() int64 {
	return int64(time.Since(base)) | 1
}

// Histogram bucket geometry: bucket i counts observations v (nanoseconds)
// with bits.Len64(v) == minLen+i, i.e. v ∈ [2^(minLen+i-1), 2^(minLen+i));
// everything below 2^minLen ns (~1µs) collapses into bucket 0 and
// everything at or above the last finite bound (~69s) into the final
// overflow bucket. Log₂ buckets bound the quantile overestimate at 2×,
// which is ample for p50/p99 latency reporting, and make recording a
// single bits.Len64 plus three atomic adds.
const (
	// minLen is the resolution floor: 2^10 ns ≈ 1µs.
	minLen = 10
	// NumBuckets spans ~1µs .. ~69s in factors of two, plus overflow.
	NumBuckets = 27
)

// Histogram is a fixed-bucket log₂ latency histogram. The zero value is
// ready to use; all methods are safe for concurrent use. Recording never
// allocates and never blocks.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one latency in nanoseconds. Negative values are clamped
// to zero (they can only arise from clock misuse; dropping them silently
// would bias counts).
//
//gcxlint:noalloc
func (h *Histogram) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	i := bits.Len64(uint64(nanos)) - minLen
	if i < 0 {
		i = 0
	} else if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(nanos)
}

// ObservePositive records nanos only when it is a real measurement
// (> 0). Throughout this codebase the zero value means "never happened"
// (writer first-byte stamps, TTFR fields of runs that produced no
// output), so recording it would invent a zero-latency observation and
// drag every quantile down.
//
//gcxlint:noalloc
func (h *Histogram) ObservePositive(nanos int64) {
	if nanos <= 0 {
		return
	}
	h.Observe(nanos)
}

// UpperBound returns the exclusive upper bound, in nanoseconds, of bucket
// i. The final bucket is unbounded; its reported bound is the largest
// finite bound (used as the conservative quantile answer for overflow).
func UpperBound(i int) int64 {
	if i < 0 {
		i = 0
	}
	if i > NumBuckets-1 {
		i = NumBuckets - 1
	}
	return 1 << (minLen + i)
}

// HistSnapshot is a point-in-time copy of a Histogram. Counts are read
// bucket by bucket without a lock: concurrent Observes may straddle the
// read, so Count may differ from the bucket sum by in-flight observations
// — harmless for monitoring, and Quantile uses the bucket sum.
type HistSnapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	Sum    int64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns the nearest-rank p-quantile (0 < p ≤ 1) in
// nanoseconds: the upper bound of the bucket holding the observation of
// rank ⌈p·n⌉. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(p float64) int64 {
	var n int64
	for i := range s.Counts {
		n += s.Counts[i]
	}
	if n == 0 {
		return 0
	}
	rank := int64(p*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return UpperBound(i)
		}
	}
	return UpperBound(NumBuckets - 1)
}

// Stopwatch times one stage of a run against the package clock. Start and
// elapsed reads are allocation-free, so a Stopwatch may live inside pooled
// run state.
type Stopwatch struct {
	start int64
}

// Start marks the stage begin.
//
//gcxlint:noalloc
func (s *Stopwatch) Start() {
	s.start = Now()
}

// ElapsedNanos returns nanoseconds since Start (0 if never started).
//
//gcxlint:noalloc
func (s *Stopwatch) ElapsedNanos() int64 {
	if s.start == 0 {
		return 0
	}
	return Now() - s.start
}
