package obs

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP gcxd_requests_total Requests served, by endpoint.
# TYPE gcxd_requests_total counter
gcxd_requests_total{endpoint="query"} 3
gcxd_requests_total{endpoint="bulk"} 0
# HELP gcxd_buffer_peak_nodes_sum Summed per-run buffer peaks.
# TYPE gcxd_buffer_peak_nodes_sum counter
gcxd_buffer_peak_nodes_sum 42
# HELP gcxd_bulk_utilization_ratio Bulk pool utilization.
# TYPE gcxd_bulk_utilization_ratio gauge
gcxd_bulk_utilization_ratio 0.75
# HELP gcxd_ttfr_seconds Time to first result byte.
# TYPE gcxd_ttfr_seconds histogram
gcxd_ttfr_seconds_bucket{query="q1",le="0.001"} 1
gcxd_ttfr_seconds_bucket{query="q1",le="0.01"} 3
gcxd_ttfr_seconds_bucket{query="q1",le="+Inf"} 4
gcxd_ttfr_seconds_sum{query="q1"} 0.05
gcxd_ttfr_seconds_count{query="q1"} 4
`

func TestParseExpositionGood(t *testing.T) {
	exp, err := ParseExposition([]byte(goodExposition))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	f := exp.Family("gcxd_requests_total")
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("gcxd_requests_total family = %+v", f)
	}
	if f.Samples[0].Label("endpoint") != "query" || f.Samples[0].Value != 3 {
		t.Errorf("sample = %+v", f.Samples[0])
	}
	// The _sum-suffixed counter keeps its own family.
	if f := exp.Family("gcxd_buffer_peak_nodes_sum"); f == nil || f.Type != "counter" {
		t.Errorf("suffix-named counter mis-familied: %+v", f)
	}
	h := exp.Family("gcxd_ttfr_seconds")
	if h == nil || h.Type != "histogram" || len(h.Samples) != 5 {
		t.Fatalf("histogram family = %+v", h)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no final newline":                 strings.TrimSuffix(goodExposition, "\n"),
		"empty":                            "",
		"sample without TYPE":              "# HELP lonely a metric\nlonely 1\n",
		"sample without HELP":              "# TYPE lonely counter\nlonely 1\n",
		"bad comment":                      "# NOTE hi there\n",
		"bad type":                         "# HELP m x\n# TYPE m distribution\nm 1\n",
		"bad metric name":                  "# HELP 9m x\n# TYPE 9m counter\n9m 1\n",
		"bad value":                        "# HELP m x\n# TYPE m counter\nm one\n",
		"two values":                       "# HELP m x\n# TYPE m counter\nm 1 2\n",
		"unterminated labels":              "# HELP m x\n# TYPE m counter\nm{a=\"b\" 1\n",
		"unquoted label":                   "# HELP m x\n# TYPE m counter\nm{a=b} 1\n",
		"duplicate series":                 "# HELP m x\n# TYPE m counter\nm{a=\"b\"} 1\nm{a=\"b\"} 2\n",
		"duplicate HELP":                   "# HELP m x\n# HELP m y\n# TYPE m counter\nm 1\n",
		"TYPE after samples":               "# HELP m x\n# TYPE m counter\nm 1\n# TYPE m counter\n",
		"reserved label":                   "# HELP m x\n# TYPE m counter\nm{__name__=\"m\"} 1\n",
		"histogram no +Inf":                "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no le":                  "# HELP h x\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"histogram not cum":                "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram inf!=count":             "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"histogram no sum":                 "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"family no samples ok but no help": "# TYPE m counter\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition([]byte(text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition:\n%s", name, text)
		}
	}
}

func TestParseExpositionLabelEscapes(t *testing.T) {
	text := "# HELP m x\n# TYPE m counter\nm{q=\"a\\\\b\\\"c\\nd\"} 1\n"
	exp, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	got := exp.Family("m").Samples[0].Label("q")
	if got != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}
