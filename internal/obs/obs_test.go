package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNowMonotonicAndNonzero(t *testing.T) {
	a := Now()
	if a <= 0 {
		t.Fatalf("Now() = %d, want > 0", a)
	}
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now() not monotonic: %d then %d", a, b)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)                 // below floor → bucket 0
	h.Observe(1023)              // still bucket 0 (floor is 2^10)
	h.Observe(1024)              // bucket 1
	h.Observe(1 << 62)           // beyond range → last bucket
	h.Observe(-5)                // clamped to 0 → bucket 0
	h.Observe(UpperBound(3) - 1) // top of bucket 3
	h.Observe(UpperBound(3))     // bottom of bucket 4
	s := h.Snapshot()
	want := map[int]int64{0: 3, 1: 1, 3: 1, 4: 1, NumBuckets - 1: 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, c, want[i])
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
}

// TestObservePositiveSkipsNonResults: 0 means "never happened" (a run
// with no output has no first result), so ObservePositive must record
// nothing for it — Observe would file a fake zero-latency sample in
// bucket 0 and drag every quantile down.
func TestObservePositiveSkipsNonResults(t *testing.T) {
	var h Histogram
	h.ObservePositive(0)
	h.ObservePositive(-1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("non-results were recorded: count %d", s.Count)
	}
	h.ObservePositive(2047) // top of bucket 1: [1024, 2048)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 2047 {
		t.Fatalf("real observation lost: count %d sum %d", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q != UpperBound(1) {
		t.Fatalf("quantile %d, want %d — zero samples must not dilute", q, UpperBound(1))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
	// 90 fast observations (~2µs) and 10 slow ones (~1s).
	for i := 0; i < 90; i++ {
		h.Observe(2_000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000_000)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 > 4_096 {
		t.Errorf("p50 = %dns, want ≤ 4096ns (bucket bound of ~2µs)", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 1_000_000_000 {
		t.Errorf("p99 = %dns, want ≥ 1s", p99)
	}
	if s.Sum != 90*2_000+10*1_000_000_000 {
		t.Errorf("Sum = %d", s.Sum)
	}
	// Nearest-rank edges: p=1 is the max bucket, tiny p is the min.
	if q := s.Quantile(1.0); q < 1_000_000_000 {
		t.Errorf("p100 = %dns, want ≥ 1s", q)
	}
	if q := s.Quantile(0.01); q > 4_096 {
		t.Errorf("p1 = %dns, want ≤ 4096ns", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(seed + i)
			}
		}(int64(w) * 1_000)
	}
	done := make(chan struct{})
	go func() {
		// Scrape while recording: snapshots must stay internally sane.
		for {
			select {
			case <-done:
				return
			default:
				s := h.Snapshot()
				var n int64
				for _, c := range s.Counts {
					n += c
				}
				if n > workers*per || s.Count > workers*per {
					t.Errorf("snapshot overcounts: buckets %d count %d", n, s.Count)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
}

// TestObserveAllocationFree is the acceptance proof that histogram
// recording — the code running inside instrumented hot paths — allocates
// nothing.
func TestObserveAllocationFree(t *testing.T) {
	var h Histogram
	var sw Stopwatch
	allocs := testing.AllocsPerRun(1000, func() {
		sw.Start()
		h.Observe(sw.ElapsedNanos())
		h.Observe(Now())
	})
	if allocs != 0 {
		t.Fatalf("Observe/Now/Stopwatch allocate %.1f per run, want 0", allocs)
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	if sw.ElapsedNanos() != 0 {
		t.Fatal("unstarted stopwatch should read 0")
	}
	sw.Start()
	time.Sleep(time.Millisecond)
	if e := sw.ElapsedNanos(); e < int64(time.Millisecond) {
		t.Fatalf("ElapsedNanos = %d, want ≥ 1ms", e)
	}
}

func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
