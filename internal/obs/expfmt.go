package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements a strict parser for the Prometheus text exposition
// format (version 0.0.4) — strict on purpose: gcxd's /metrics endpoint is
// scraped by CI and dashboards, and a malformed line should fail the test
// suite, not be shrugged off by a lenient scraper. Beyond line syntax the
// parser enforces the conventions gcxd commits to:
//
//   - every sample belongs to a family that declared # HELP and # TYPE
//     before its first sample;
//   - the exposition ends with a newline;
//   - no duplicate series (same name and label set twice);
//   - histogram families carry _bucket/_sum/_count series, the _bucket
//     series have an `le` label ending in "+Inf", bucket counts are
//     cumulative, and the +Inf bucket equals _count.

// Sample is one exposed series value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of the named label ("" if absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Family is one metric family: its HELP/TYPE metadata and samples in
// exposition order. For histograms the family is keyed by the base name
// and holds the _bucket/_sum/_count samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed scrape.
type Exposition struct {
	Families map[string]*Family
	// Order lists family names in first-appearance order.
	Order []string
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family {
	if e == nil {
		return nil
	}
	return e.Families[name]
}

// ParseExposition parses and validates a Prometheus text-format scrape.
func ParseExposition(data []byte) (*Exposition, error) {
	text := string(data)
	if text == "" {
		return nil, fmt.Errorf("expfmt: empty exposition")
	}
	if !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("expfmt: exposition does not end with a newline")
	}
	exp := &Exposition{Families: make(map[string]*Family)}
	seen := make(map[string]bool) // series dedup: name + canonical labels
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseMeta(line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if err := exp.parseSample(line, lineNo, seen); err != nil {
			return nil, err
		}
	}
	for _, name := range exp.Order {
		f := exp.Families[name]
		if f.Help == "" {
			return nil, fmt.Errorf("expfmt: family %s has no # HELP line", name)
		}
		if f.Type == "" {
			return nil, fmt.Errorf("expfmt: family %s has no # TYPE line", name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return exp, nil
}

func (e *Exposition) family(name string) *Family {
	f := e.Families[name]
	if f == nil {
		f = &Family{Name: name}
		e.Families[name] = f
		e.Order = append(e.Order, name)
	}
	return f
}

// parseMeta handles "# HELP name text" / "# TYPE name kind" comment lines.
// Other comments are permitted by the format but gcxd never emits them, so
// they are rejected here.
func (e *Exposition) parseMeta(line string, lineNo int) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return fmt.Errorf("expfmt: line %d: comment is not a HELP/TYPE line: %q", lineNo, line)
	}
	kind, rest, ok := strings.Cut(rest, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return fmt.Errorf("expfmt: line %d: expected HELP or TYPE, got %q", lineNo, line)
	}
	name, text, ok := strings.Cut(rest, " ")
	if !ok || text == "" {
		return fmt.Errorf("expfmt: line %d: %s line missing text: %q", lineNo, kind, line)
	}
	if !validMetricName(name) {
		return fmt.Errorf("expfmt: line %d: invalid metric name %q", lineNo, name)
	}
	f := e.family(name)
	switch kind {
	case "HELP":
		if f.Help != "" {
			return fmt.Errorf("expfmt: line %d: duplicate HELP for %s", lineNo, name)
		}
		f.Help = text
	case "TYPE":
		if f.Type != "" {
			return fmt.Errorf("expfmt: line %d: duplicate TYPE for %s", lineNo, name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("expfmt: line %d: TYPE for %s after its samples", lineNo, name)
		}
		switch text {
		case "counter", "gauge", "histogram", "summary", "untyped":
			f.Type = text
		default:
			return fmt.Errorf("expfmt: line %d: unknown type %q for %s", lineNo, text, name)
		}
	}
	return nil
}

func (e *Exposition) parseSample(line string, lineNo int, seen map[string]bool) error {
	name, rest := splitMetricName(line)
	if name == "" {
		return fmt.Errorf("expfmt: line %d: invalid metric name in %q", lineNo, line)
	}
	labels := map[string]string{}
	var canon []string
	if strings.HasPrefix(rest, "{") {
		body, after, ok := cutLabelBlock(rest)
		if !ok {
			return fmt.Errorf("expfmt: line %d: unterminated label block in %q", lineNo, line)
		}
		rest = after
		var err error
		labels, canon, err = parseLabels(body)
		if err != nil {
			return fmt.Errorf("expfmt: line %d: %w", lineNo, err)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return fmt.Errorf("expfmt: line %d: expected exactly one value after series in %q", lineNo, line)
	}
	val, err := parseValue(rest)
	if err != nil {
		return fmt.Errorf("expfmt: line %d: bad value %q: %w", lineNo, rest, err)
	}
	// Family resolution: an exact-name family wins (a plain counter may
	// legitimately end in _sum, like gcxd_buffer_peak_nodes_sum); only
	// otherwise does a histogram suffix fold the sample into its base
	// family.
	f := e.Families[name]
	if f == nil {
		if base := baseFamilyName(name); base != name {
			if bf := e.Families[base]; bf != nil && bf.Type == "histogram" {
				f = bf
			}
		}
	}
	if f == nil || f.Type == "" || f.Help == "" {
		return fmt.Errorf("expfmt: line %d: sample %s before # HELP and # TYPE for its family", lineNo, name)
	}
	key := name + "{" + strings.Join(canon, ",") + "}"
	if seen[key] {
		return fmt.Errorf("expfmt: line %d: duplicate series %s", lineNo, key)
	}
	seen[key] = true
	f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: val})
	return nil
}

func splitMetricName(line string) (name, rest string) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '{' || c == ' ' {
			break
		}
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", line
	}
	return name, line[i:]
}

// cutLabelBlock splits "{...}rest" respecting quoted label values.
func cutLabelBlock(s string) (body, rest string, ok bool) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip escaped char
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return s[1:i], s[i+1:], true
		}
	}
	return "", "", false
}

func parseLabels(body string) (map[string]string, []string, error) {
	labels := map[string]string{}
	var canon []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, nil, fmt.Errorf("label pair missing '=' in %q", body)
		}
		name := body[:eq]
		if !validLabelName(name) {
			return nil, nil, fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return nil, nil, fmt.Errorf("label %s value is not quoted", name)
		}
		val, rest, err := cutQuoted(body)
		if err != nil {
			return nil, nil, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val
		body = rest
		if strings.HasPrefix(body, ",") {
			body = body[1:]
			if body == "" {
				break // trailing comma is tolerated by the format
			}
		} else if body != "" {
			return nil, nil, fmt.Errorf("expected ',' between labels, got %q", body)
		}
	}
	for k, v := range labels {
		canon = append(canon, k+"="+v)
	}
	sort.Strings(canon)
	return labels, canon, nil
}

// cutQuoted parses a leading quoted string with \\, \", \n escapes.
func cutQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func parseValue(s string) (float64, error) {
	// strconv accepts the exposition's value grammar including +Inf, -Inf,
	// and NaN (any case).
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// histogramSuffixes are the series suffixes owned by a histogram family.
var histogramSuffixes = []string{"_bucket", "_sum", "_count"}

// baseFamilyName maps a sample name to its family name: for histogram
// suffixes the base name, otherwise the name itself. The caller resolves
// which interpretation applies (a declared family wins).
func baseFamilyName(name string) string {
	for _, suf := range histogramSuffixes {
		if base, ok := strings.CutSuffix(name, suf); ok && base != "" {
			return base
		}
	}
	return name
}

// validateHistogram enforces the histogram family shape on every label
// combination (excluding le): cumulative buckets, a final +Inf bucket, and
// matching _count.
func validateHistogram(f *Family) error {
	type series struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	groups := map[string]*series{}
	order := []string{}
	group := func(s Sample) *series {
		var parts []string
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		key := strings.Join(parts, ",")
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for i := range f.Samples {
		s := f.Samples[i]
		g := group(s)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if s.Label("le") == "" {
				return fmt.Errorf("expfmt: %s bucket without le label", f.Name)
			}
			g.buckets = append(g.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = &f.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			g.count = &f.Samples[i]
		default:
			return fmt.Errorf("expfmt: histogram %s has stray sample %s", f.Name, s.Name)
		}
	}
	for _, key := range order {
		g := groups[key]
		if len(g.buckets) == 0 || g.sum == nil || g.count == nil {
			return fmt.Errorf("expfmt: histogram %s{%s} missing _bucket/_sum/_count", f.Name, key)
		}
		prevLe := float64(0)
		prevCum := float64(0)
		for i, b := range g.buckets {
			le, err := parseValue(b.Label("le"))
			if err != nil {
				return fmt.Errorf("expfmt: histogram %s{%s}: bad le %q", f.Name, key, b.Label("le"))
			}
			if i > 0 && le <= prevLe {
				return fmt.Errorf("expfmt: histogram %s{%s}: le bounds not increasing", f.Name, key)
			}
			if b.Value < prevCum {
				return fmt.Errorf("expfmt: histogram %s{%s}: bucket counts not cumulative at le=%q", f.Name, key, b.Label("le"))
			}
			prevLe, prevCum = le, b.Value
		}
		last := g.buckets[len(g.buckets)-1]
		if last.Label("le") != "+Inf" {
			return fmt.Errorf("expfmt: histogram %s{%s}: last bucket is le=%q, want +Inf", f.Name, key, last.Label("le"))
		}
		if last.Value != g.count.Value {
			return fmt.Errorf("expfmt: histogram %s{%s}: +Inf bucket %v != _count %v", f.Name, key, last.Value, g.count.Value)
		}
	}
	return nil
}
