package workload

import (
	"testing"

	"gcx/internal/engine"
)

// Equivalence under maximal node sharing: duplicated and heavily
// overlapping member queries collapse onto shared projection nodes (extra
// role lanes), and every member must still produce its solo output byte
// for byte with balanced role accounting.

var overlapQueries = []string{
	`<r>{ for $b in /bib/book return $b/title }</r>`,
	`<r>{ for $b in /bib/book return $b/title }</r>`, // identical duplicate
	`<r>{ for $p in /bib/book return $p/price }</r>`, // shared spine
	`<r>{ for $b in /bib/book return if (exists($b/price)) then $b/title else () }</r>`,
	`<r>{ for $b in /bib/book return $b/title }</r>`, // second duplicate
}

func TestWorkloadSharedNodesMatchSolo(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeGCX, engine.ModeStaticOnly} {
		t.Run(mode.String(), func(t *testing.T) {
			var want []string
			for _, q := range overlapQueries {
				out, _ := soloRun(t, q, testDoc, mode)
				want = append(want, out)
			}
			got, _, qs := runWorkload(t, overlapQueries, testDoc, Config{Engine: engine.Config{Mode: mode}, Batch: 1})
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("query %d output mismatch:\n got: %s\nwant: %s", i, got[i], want[i])
				}
			}
			for i, q := range qs {
				if q.Err != nil {
					t.Errorf("query %d error: %v", i, q.Err)
				}
				if mode == engine.ModeGCX && q.RoleAssignments != q.RoleRemovals {
					t.Errorf("query %d roles unbalanced: %d assigned, %d removed", i, q.RoleAssignments, q.RoleRemovals)
				}
			}
		})
	}
}

// TestWorkloadSharedVsDisjointAgree: the shared merge and the disjoint
// comparator are two implementations of the same semantics — outputs must
// be byte-identical across a query mix with duplicates, shared spines, and
// disjoint structures.
func TestWorkloadSharedVsDisjointAgree(t *testing.T) {
	queries := append(append([]string{}, overlapQueries...), testQueries...)
	shared, _, _ := runWorkload(t, queries, testDoc, Config{Engine: engine.Config{Mode: engine.ModeGCX}, Batch: 1})
	disjoint, _, _ := runWorkload(t, queries, testDoc, Config{Engine: engine.Config{Mode: engine.ModeGCX}, Batch: 1, DisjointMerge: true})
	for i := range shared {
		if shared[i] != disjoint[i] {
			t.Errorf("query %d: shared and disjoint merges disagree:\nshared:   %s\ndisjoint: %s",
				i, shared[i], disjoint[i])
		}
	}
}
