// Package workload evaluates a set of compiled XQ queries over ONE pass of
// a shared XML stream (see DESIGN.md, "Shared-stream workloads").
//
// The paper's pipeline — projection tree, role table, signOff-driven
// purging — is defined per query, but nothing in it prevents sharing the
// input scan: projection trees union cleanly (static.MergeTrees) and roles
// are renumbered into disjoint per-query role spaces, so one tokenizer,
// one projector, and one buffer serve every member query at once. Each
// member keeps its own evaluator and output writer; a round-robin
// coroutine scheduler (sched.go) advances each evaluator as the data it
// blocks on arrives, preserving the member's solo output byte for byte.
//
// Garbage collection degrades gracefully to the multi-query setting with
// no new machinery: a buffered node carries role instances from every
// interested query, and the buffer's existing refcount discipline reclaims
// it only when the last of them is signed off — per-query aggregate-role
// refcounts on shared subtrees.
package workload

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"gcx/internal/buffer"
	"gcx/internal/dtd"
	"gcx/internal/engine"
	"gcx/internal/eval"
	"gcx/internal/obs"
	"gcx/internal/proj"
	"gcx/internal/projtree"
	"gcx/internal/static"
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Config controls workload compilation. Every member query is compiled
// with the same engine configuration (mode, optimizations, schema): the
// shared projector runs one merged projection tree, so the matching
// discipline must be uniform across members.
type Config struct {
	Engine engine.Config
	// Batch is the number of tokens the scheduler feeds per round once
	// every live evaluator is blocked on the stream (default 64; see
	// sched.go). Tests use 1 to reproduce the solo demand schedule
	// token-exactly.
	Batch int
	// DisjointMerge selects the pre-sharing projection-tree merge
	// (static.MergeTreesDisjoint): member subtrees cloned verbatim, so
	// matching cost is linear in the member count. It is the comparator
	// for the subscription-scaling benchmark and a diagnostic fallback;
	// production workloads use the shared merge.
	DisjointMerge bool
}

// Compiled is a set of queries compiled into one shared serving artifact.
// All exported fields are immutable after Compile; runs draw their mutable
// machinery from an internal pool, so a single Compiled may serve many
// goroutines at once (each Run is one sequential pass).
type Compiled struct {
	// Members are the per-query compilations (diagnostics, solo runs).
	Members []*engine.Compiled
	// Tree is the combined projection tree the shared projector runs with.
	Tree *projtree.Tree
	// Offsets[i] translates member i's solo role IDs into the combined
	// role space (see static.MergeTrees).
	Offsets []xqast.Role
	Mode    engine.Mode

	roleCounts []int
	schema     *dtd.Schema
	tokOpts    xmlstream.Options
	aggMatch   bool
	agg        []bool
	batch      int
	pool       sync.Pool
}

// Compile compiles each query solo and merges the projection trees into
// the shared artifact.
func Compile(srcs []string, cfg Config) (*Compiled, error) {
	if len(srcs) == 0 {
		return nil, errors.New("workload: no queries")
	}
	members := make([]*engine.Compiled, len(srcs))
	for i, src := range srcs {
		m, err := engine.Compile(src, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i, err)
		}
		members[i] = m
	}
	return CompileMembers(members, cfg)
}

// CompileMembers assembles the shared artifact from already-compiled
// member queries. All members must have been compiled with the same
// engine configuration (mode, optimizations, schema): the shared
// projector runs one merged projection tree, so the matching discipline
// must be uniform. The members are reused as-is — the subscription
// registry rebuilds its snapshot on churn without recompiling surviving
// queries.
func CompileMembers(members []*engine.Compiled, cfg Config) (*Compiled, error) {
	if len(members) == 0 {
		return nil, errors.New("workload: no queries")
	}
	trees := make([]*projtree.Tree, len(members))
	for i, m := range members {
		trees[i] = m.MatchTree
	}
	var merged *projtree.Tree
	var offsets []xqast.Role
	if cfg.DisjointMerge {
		merged, offsets = static.MergeTreesDisjoint(trees)
	} else {
		merged, offsets = static.MergeTrees(trees)
	}

	c := &Compiled{
		Members: members,
		Tree:    merged,
		Offsets: offsets,
		Mode:    cfg.Engine.Mode,
		schema:  cfg.Engine.Schema,
		tokOpts: xmlstream.DefaultOptions(),
		batch:   cfg.Batch,
	}
	if cfg.Engine.Tokenizer != nil {
		c.tokOpts = *cfg.Engine.Tokenizer
	}
	c.roleCounts = make([]int, len(members))
	for i, m := range members {
		c.roleCounts[i] = len(m.MatchTree.Roles) - 1
	}
	// Aggregate flags and the matching discipline mirror engine.Compile;
	// members all share one static configuration, so member 0 is
	// representative.
	c.aggMatch = c.Mode == engine.ModeFullBuffer || members[0].Analysis.Opts.AggregateRoles
	c.agg = make([]bool, len(merged.Roles))
	for i, r := range merged.Roles {
		if i > 0 && r.Aggregate {
			c.agg[i] = true
		}
	}
	return c, nil
}

// Len returns the number of member queries.
func (c *Compiled) Len() int { return len(c.Members) }

// Stats aggregates the shared-pass measurements: the buffer accounting is
// necessarily global (members share the buffer), TokensRead counts the
// single pass, OutputBytes sums the members.
type Stats struct {
	Buffer      buffer.Stats
	TokensRead  int64
	OutputBytes int64
	// TTFRNanos is the time from pass start to the FIRST result byte any
	// member produced (0 when no member emitted output).
	TTFRNanos int64
	// WallNanos is the shared pass's wall time.
	WallNanos int64
}

// QueryStats reports one member's share of a run.
type QueryStats struct {
	// OutputBytes is the member's serialized output.
	OutputBytes int64
	// SignOffs counts the member's executed signOff statements.
	SignOffs int64
	// RoleAssignments / RoleRemovals count role instances in the member's
	// role space (assignments equal removals after a clean GCX run).
	RoleAssignments int64
	RoleRemovals    int64
	// TokensAtDone is the shared stream position when the member's
	// evaluator completed — how much of the input this query needed.
	TokensAtDone int64
	// TTFRNanos is the time from pass start to this member's first
	// result byte (0 if the member produced no output): members emit
	// progressively along the shared pass, so each has its own
	// time-to-first-result.
	TTFRNanos int64
	// WallNanos is the time from pass start to this member's evaluator
	// completing — when the member's LAST result byte was available.
	WallNanos int64
	// Err is the member's evaluation error, if any.
	Err error
}

// runState bundles the mutable machinery of one shared pass: the solo
// runState of PR 1 with the writer/evaluator pair fanned out per member
// and the scheduler in place of the direct evaluator→projector wiring.
type runState struct {
	syms  *xmlstream.SymTab
	buf   *buffer.Buffer
	tok   *xmlstream.Tokenizer
	proj  *proj.Projector
	sched *scheduler
	ws    []*xmlstream.Writer
	evs   []*eval.Evaluator
	// onSign are the per-member signOff counting hooks, built once so
	// pooled reruns do not allocate closures.
	onSign []func(xqast.SignOff)
}

// maxRetainedSyms bounds the pooled symbol table across runs (same cap as
// the solo engine).
const maxRetainedSyms = 4096

func (c *Compiled) newRunState() *runState {
	n := len(c.Members)
	syms := xmlstream.NewSymTab()
	buf := buffer.New(syms, len(c.Tree.Roles)-1, c.agg)
	tokOpts := c.tokOpts
	tokOpts.BorrowText = true
	tok := xmlstream.NewTokenizerOptions(nil, tokOpts)
	p := proj.New(tok, buf, c.Tree, proj.Options{
		AggregateRoles: c.aggMatch,
		Schema:         c.schema,
		BorrowedText:   true,
	})
	rs := &runState{
		syms:   syms,
		buf:    buf,
		tok:    tok,
		proj:   p,
		sched:  newScheduler(p, n, c.batch),
		ws:     make([]*xmlstream.Writer, n),
		evs:    make([]*eval.Evaluator, n),
		onSign: make([]func(xqast.SignOff), n),
	}
	for i, m := range c.Members {
		t := rs.sched.tasks[i]
		w := xmlstream.NewWriter(io.Discard)
		ev := eval.New(buf, t, w, eval.Options{})
		rs.ws[i] = w
		rs.evs[i] = ev
		query := m.Analysis.Query
		t.exec = func() error { return ev.Run(query) }
		rs.onSign[i] = func(xqast.SignOff) { t.signOffs++ }
	}
	return rs
}

// acquire takes a runState from the pool and points it at this run's input
// and outputs.
func (c *Compiled) acquire(in io.Reader, outs []io.Writer) *runState {
	rs, _ := c.pool.Get().(*runState)
	if rs == nil {
		rs = c.newRunState()
	}
	rs.reset(c, in, outs)
	return rs
}

// reset points the runState at a new run's input and outputs. Reset order
// matches the solo engine: the projector rebuilds its root frame around
// the buffer's fresh root.
//
//gcxlint:keep onSign the per-member counting hooks are built once in newRunState and re-wired into each evaluator below
func (rs *runState) reset(c *Compiled, in io.Reader, outs []io.Writer) {
	rs.tok.Reset(in)
	rs.buf.Reset()
	// The symbol table survives runs (tag vocabularies repeat) but is
	// bounded. Safe only after buf.Reset — no buffered node carries a
	// Sym anymore.
	if rs.syms.Len() > maxRetainedSyms {
		rs.syms.Reset()
	}
	rs.proj.Reset()
	rs.sched.reset()
	for i := range rs.evs {
		rs.ws[i].Reset(outs[i])
		rs.evs[i].Reset(eval.Options{
			ExecuteSignOffs: c.Mode == engine.ModeGCX,
			Schema:          c.schema,
			RoleOffset:      c.Offsets[i],
			OnSignOff:       rs.onSign[i],
		})
	}
}

// release returns a runState to the pool, dropping caller references and
// buffered document text.
func (c *Compiled) release(rs *runState) {
	rs.tok.Reset(nil)
	for _, w := range rs.ws {
		w.Reset(io.Discard)
	}
	rs.buf.Reset()
	c.pool.Put(rs)
}

// Run evaluates every member query over the XML document read from in —
// tokenizing, projecting, and buffering it exactly once — writing member
// i's result to outs[i]. The outputs must be distinct writers: members
// produce their results concurrently along the pass. The returned error
// joins the members' evaluation errors (a stream-level error surfaces
// through every member it interrupted).
func (c *Compiled) Run(in io.Reader, outs []io.Writer) (Stats, []QueryStats, error) {
	st, qs, rs, err := c.run(in, outs)
	c.release(rs)
	return st, qs, err
}

// RunChecked is Run followed by the buffer balance and residue invariant
// checks (meaningful in ModeGCX only, as in the solo engine).
func (c *Compiled) RunChecked(in io.Reader, outs []io.Writer) (Stats, []QueryStats, error) {
	st, qs, rs, err := c.run(in, outs)
	defer c.release(rs)
	if err == nil && c.Mode == engine.ModeGCX {
		if err := rs.buf.CheckBalance(); err != nil {
			return st, qs, fmt.Errorf("%w\nbuffer:\n%s", err, rs.buf.Dump())
		}
		if err := rs.buf.CheckResidue(); err != nil {
			return st, qs, fmt.Errorf("%w\nbuffer:\n%s", err, rs.buf.Dump())
		}
	}
	return st, qs, err
}

func (c *Compiled) run(in io.Reader, outs []io.Writer) (Stats, []QueryStats, *runState, error) {
	if len(outs) != len(c.Members) {
		panic(fmt.Sprintf("workload: %d queries but %d output writers", len(c.Members), len(outs)))
	}
	start := obs.Now()
	rs := c.acquire(in, outs)
	rs.sched.run()

	st := Stats{
		Buffer:     rs.buf.Stats(),
		TokensRead: rs.proj.TokensRead(),
		WallNanos:  obs.Now() - start,
	}
	qs := make([]QueryStats, len(c.Members))
	var errs []error
	for i := range c.Members {
		t := rs.sched.tasks[i]
		q := QueryStats{
			OutputBytes:  rs.ws[i].BytesWritten(),
			SignOffs:     t.signOffs,
			TokensAtDone: t.tokensAtDone,
			Err:          t.err,
		}
		// Each member writer stamped its own first result byte along the
		// shared pass; the aggregate TTFR is the earliest of them. A
		// member whose bytes never left its bufio (failed before any
		// flush) answered nothing and reports no TTFR.
		if fb := rs.ws[i].FirstByteAt(); fb > 0 && rs.ws[i].Delivered() > 0 {
			q.TTFRNanos = max(fb-start, 1)
			if st.TTFRNanos == 0 || q.TTFRNanos < st.TTFRNanos {
				st.TTFRNanos = q.TTFRNanos
			}
		}
		if t.doneAt > 0 {
			q.WallNanos = max(t.doneAt-start, 1)
		}
		for r := c.Offsets[i] + 1; r <= c.Offsets[i]+xqast.Role(c.roleCounts[i]); r++ {
			q.RoleAssignments += rs.buf.AssignedCount(r)
			q.RoleRemovals += rs.buf.RemovedCount(r)
		}
		st.OutputBytes += q.OutputBytes
		qs[i] = q
		if t.err != nil {
			errs = append(errs, fmt.Errorf("query %d: %w", i, t.err))
		}
	}
	return st, qs, rs, errors.Join(errs...)
}

// Explain renders the per-member compilation diagnostics followed by the
// merged projection tree and combined role table.
func (c *Compiled) Explain() string {
	var b strings.Builder
	for i, m := range c.Members {
		fmt.Fprintf(&b, "=== query %d (roles +%d) ===\n%s\n", i, c.Offsets[i], m.Explain())
	}
	b.WriteString("=== merged projection tree ===\n")
	b.WriteString(c.Tree.Format())
	b.WriteString("\nmerged roles:\n")
	b.WriteString(c.Tree.FormatRoles())
	return b.String()
}
