package workload

import (
	"errors"
	"io"
	"strings"
	"testing"

	"gcx/internal/engine"
)

// The failing reader/writer shapes mirror internal/engine/failure_test.go,
// lifted one layer up: a shared-stream pass must propagate I/O failures
// through every member evaluator it interrupts, and a single member's
// output failure must not corrupt its siblings.

type failingReader struct {
	src io.Reader
	n   int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errors.New("disk on fire")
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	m, err := r.src.Read(p)
	r.n -= m
	return m, err
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("pipe closed")
	}
	if len(p) > w.n {
		m := w.n
		w.n = 0
		return m, errors.New("pipe closed")
	}
	w.n -= len(p)
	return len(p), nil
}

func compileWorkload(t *testing.T, srcs []string) *Compiled {
	t.Helper()
	c, err := Compile(srcs, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bigDoc() string {
	return `<bib>` + strings.Repeat(`<book><title>some title</title><price>9</price></book>`, 500) + `</bib>`
}

// TestWorkloadReadErrorReachesEveryMember: a stream failure interrupts the
// single shared pass, so every still-running member must report it.
func TestWorkloadReadErrorReachesEveryMember(t *testing.T) {
	c := compileWorkload(t, []string{
		`<a>{ for $b in /bib/book return $b/title }</a>`,
		`<b>{ for $b in /bib/book return $b/price }</b>`,
	})
	outs := []io.Writer{io.Discard, io.Discard}
	_, qs, err := c.Run(&failingReader{src: strings.NewReader(bigDoc()), n: 300}, outs)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("read error must surface verbatim, got %v", err)
	}
	for i, q := range qs {
		if q.Err == nil || !strings.Contains(q.Err.Error(), "disk on fire") {
			t.Fatalf("member %d must report the stream failure, got %v", i, q.Err)
		}
	}
}

// TestWorkloadMemberWriteFailureIsIsolated: one member's sink failing must
// surface as that member's error while the sibling completes its full,
// correct output.
func TestWorkloadMemberWriteFailureIsIsolated(t *testing.T) {
	srcs := []string{
		`<a>{ for $b in /bib/book return $b/title }</a>`,
		`<b>{ for $b in /bib/book return $b/price }</b>`,
	}
	c := compileWorkload(t, srcs)
	doc := bigDoc()

	var good strings.Builder
	bad := &failingWriter{n: 64}
	_, qs, err := c.Run(strings.NewReader(doc), []io.Writer{bad, &good})
	if err == nil || !strings.Contains(err.Error(), "pipe closed") {
		t.Fatalf("write error must surface, got %v", err)
	}
	if qs[0].Err == nil || !strings.Contains(qs[0].Err.Error(), "pipe closed") {
		t.Fatalf("failing member's QueryStats must carry the error, got %v", qs[0].Err)
	}
	if qs[1].Err != nil {
		t.Fatalf("healthy member must not inherit the failure, got %v", qs[1].Err)
	}

	// The sibling's output must be byte-identical to its solo run.
	solo, err := engine.Compile(srcs[1], engine.Config{Mode: engine.ModeGCX})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if _, err := solo.Run(strings.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}
	if good.String() != want.String() {
		t.Fatal("sibling output corrupted by the failing member")
	}
}

// TestWorkloadTruncatedInput: a document cut off mid-element must produce
// a syntax error, not a hang or a silent partial result.
func TestWorkloadTruncatedInput(t *testing.T) {
	c := compileWorkload(t, []string{
		`<a>{ for $b in /bib/book return $b/title }</a>`,
		`<b>{ for $b in /bib/book return $b/price }</b>`,
	})
	doc := bigDoc()
	truncated := doc[:len(doc)/2]
	outs := []io.Writer{io.Discard, io.Discard}
	_, qs, err := c.Run(strings.NewReader(truncated), outs)
	if err == nil || !strings.Contains(err.Error(), "unexpected end of input") {
		t.Fatalf("truncated input must be a syntax error, got %v", err)
	}
	for i, q := range qs {
		if q.Err == nil {
			t.Fatalf("member %d must see the truncation", i)
		}
	}
}

// TestWorkloadAllWritersFailing: every member failing must not deadlock
// the baton-passing scheduler.
func TestWorkloadAllWritersFailing(t *testing.T) {
	c := compileWorkload(t, []string{
		`<a>{ for $b in /bib/book return $b/title }</a>`,
		`<b>{ for $b in /bib/book return $b/price }</b>`,
		`<c>{ for $b in /bib/book return $b }</c>`,
	})
	outs := []io.Writer{&failingWriter{n: 16}, &failingWriter{n: 0}, &failingWriter{n: 128}}
	_, qs, err := c.Run(strings.NewReader(bigDoc()), outs)
	if err == nil {
		t.Fatal("every member failing must surface an error")
	}
	for i, q := range qs {
		if q.Err == nil || !strings.Contains(q.Err.Error(), "pipe closed") {
			t.Fatalf("member %d: %v", i, q.Err)
		}
	}
}

// TestWorkloadRecoversAfterFailure: a pooled run state that served a
// failed pass must serve a clean pass afterwards (reset discipline).
func TestWorkloadRecoversAfterFailure(t *testing.T) {
	c := compileWorkload(t, []string{
		`<a>{ for $b in /bib/book return $b/title }</a>`,
		`<b>{ for $b in /bib/book return $b/price }</b>`,
	})
	doc := bigDoc()
	outs := []io.Writer{io.Discard, io.Discard}
	if _, _, err := c.Run(&failingReader{src: strings.NewReader(doc), n: 300}, outs); err == nil {
		t.Fatal("expected a read failure")
	}
	var a, b strings.Builder
	if _, _, err := c.RunChecked(strings.NewReader(doc), []io.Writer{&a, &b}); err != nil {
		t.Fatalf("clean run after failure: %v", err)
	}
	if !strings.Contains(a.String(), "some title") || !strings.Contains(b.String(), "9") {
		t.Fatal("post-failure run produced wrong output")
	}
}
