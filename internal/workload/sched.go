package workload

import (
	"gcx/internal/obs"
	"gcx/internal/proj"
)

// scheduler drives N pull-based evaluators over ONE shared stream
// pre-projector. Each evaluator runs in its own goroutine, but execution
// is strictly sequential: a baton (one channel handoff per suspension
// point) guarantees that at any moment exactly one goroutine — either the
// scheduler or a single evaluator — is running, so the shared buffer needs
// no locking and every run is deterministic.
//
// The round structure is the paper's Figure 11 chain generalized to a set
// of queries: the scheduler resumes each live evaluator in turn; an
// evaluator runs until it either completes or needs stream data that is
// not buffered yet (it then parks in its feeder's Step). Once every live
// evaluator is parked, the scheduler advances the shared projector by up
// to batch tokens — filling the shared buffer for everyone at once — and
// starts the next round. A query's signOffs therefore execute as early as
// its own data dependencies allow, within batch tokens of the solo
// schedule, and the input is tokenized and projected exactly once.
type scheduler struct {
	proj  *proj.Projector
	tasks []*task
	batch int

	// yield is the baton back to the scheduler: a running task sends on it
	// exactly once per suspension (want-token or done) and the scheduler is
	// the only receiver.
	yield chan struct{}

	eof       bool
	streamErr error
}

type taskState uint8

const (
	taskIdle taskState = iota
	taskWant           // parked in feeder.Step, waiting for stream progress
	taskDone           // evaluator returned (err recorded)
)

// task is one member query's run handle. The struct is persistent across
// pooled runs; reset() clears the per-run fields.
type task struct {
	s      *scheduler
	id     int
	resume chan struct{}
	// exec runs the member's evaluator; wired once at runState
	// construction (the evaluator and its rewritten query are persistent).
	exec func() error

	state    taskState
	err      error
	panicked any
	hasPanic bool

	// signOffs counts this query's executed signOff statements (fed by the
	// evaluator's OnSignOff hook).
	signOffs int64
	// tokensAtDone is the shared stream position when this query's
	// evaluator completed.
	tokensAtDone int64
	// doneAt is the obs.Now timestamp when this query's evaluator
	// completed (its last result byte was available).
	doneAt int64
}

// defaultBatch is the number of tokens fed per scheduling round once every
// live evaluator is parked. Larger batches amortize the per-suspension
// baton handoffs (two channel operations per parked evaluator per round)
// over more stream progress; the price is that a signOff — and the purge
// it triggers — may run up to batch tokens later than in a solo run, so
// the peak buffer can exceed the ideal by O(batch) nodes. 64 makes the
// scheduling overhead vanish against tokenization while keeping the
// buffer overshoot far below any real document's working set.
const defaultBatch = 64

func newScheduler(p *proj.Projector, n, batch int) *scheduler {
	if batch <= 0 {
		batch = defaultBatch
	}
	s := &scheduler{proj: p, batch: batch, yield: make(chan struct{})}
	s.tasks = make([]*task, n)
	for i := range s.tasks {
		s.tasks[i] = &task{s: s, id: i, resume: make(chan struct{})}
	}
	return s
}

// reset prepares the scheduler for another pooled run. The projector must
// have been reset first.
//
//gcxlint:keep proj wired at construction; the owner resets the projector separately
//gcxlint:keep tasks the task handles are persistent; their per-run fields are cleared in the loop below
//gcxlint:keep batch configuration fixed at construction
//gcxlint:keep yield the baton channel is the scheduler's identity and is empty whenever the scheduler is parked
func (s *scheduler) reset() {
	s.eof = false
	s.streamErr = nil
	for _, t := range s.tasks {
		t.state = taskIdle
		t.err = nil
		t.panicked = nil
		t.hasPanic = false
		t.signOffs = 0
		t.tokensAtDone = 0
		t.doneAt = 0
	}
}

// Step implements eval.Feeder for one member query: instead of stepping
// the projector directly (the solo wiring), the evaluator parks here and
// the scheduler advances the shared stream once every live evaluator is
// blocked on it.
func (t *task) Step() (bool, error) {
	s := t.s
	if s.streamErr != nil {
		return false, s.streamErr
	}
	if s.eof {
		return false, nil
	}
	t.state = taskWant
	s.yield <- struct{}{}
	<-t.resume
	if s.streamErr != nil {
		return false, s.streamErr
	}
	return !s.eof, nil
}

// main is one evaluator goroutine: wait for the first baton, run the
// member query, hand the baton back marked done. A panic in the evaluator
// is captured so the scheduler can unwind the remaining members and
// re-raise it on the caller's goroutine.
func (t *task) main() {
	<-t.resume
	defer func() {
		if r := recover(); r != nil {
			t.panicked = r
			t.hasPanic = true
		}
		t.state = taskDone
		t.tokensAtDone = t.s.proj.TokensRead()
		t.doneAt = obs.Now()
		t.s.yield <- struct{}{}
	}()
	t.err = t.exec()
}

// run executes all member queries over one pass of the shared stream and
// returns the first stream-level error (member evaluation errors are left
// on the tasks). It must be called with the projector freshly reset.
func (s *scheduler) run() error {
	live := len(s.tasks)
	want := make([]*task, 0, live)
	for _, t := range s.tasks {
		go t.main()
		want = append(want, t)
	}
	for live > 0 {
		// Advance phase: let every runnable member consume what the buffer
		// already holds (executing its signOffs as it goes). The baton
		// discipline — send resume, then block on yield — keeps exactly one
		// goroutine running.
		next := want[:0]
		for _, t := range want {
			t.resume <- struct{}{}
			<-s.yield
			if t.state == taskDone {
				live--
				continue
			}
			next = append(next, t)
		}
		want = next
		if live == 0 {
			break
		}
		// Feed phase: every live member is parked on the stream. Advance
		// the shared projector by up to batch tokens; after EOF (or a
		// stream error) the members are resumed a final time and unwind on
		// their own (all buffered nodes are finished at a clean EOF).
		for fed := 0; fed < s.batch && !s.eof && s.streamErr == nil; fed++ {
			more, err := s.proj.Step()
			if err != nil {
				s.streamErr = err
				break
			}
			if !more {
				s.eof = true
			}
		}
	}
	for _, t := range s.tasks {
		if t.hasPanic {
			panic(t.panicked)
		}
	}
	return s.streamErr
}
