package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gcx/internal/engine"
	"gcx/internal/xqast"
)

// Randomized workload equivalence (the shared-stream analogue of the
// engine's TestTheorem1Equivalence): for random documents and random SETS
// of XQ queries, every member's output from one shared pass is
// byte-identical to its solo run, under all three buffering strategies,
// and the shared pass consumes exactly as many tokens as the most
// demanding solo run (with Batch=1, which reproduces the solo demand
// schedule token-exactly).

var quickTags = []string{"a", "b", "c", "d", "e"}
var quickTexts = []string{"1", "7", "42", "x", "yy"}

func randDoc(r *rand.Rand) string {
	var b strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		tag := quickTags[r.Intn(len(quickTags))]
		b.WriteString("<" + tag + ">")
		n := r.Intn(4)
		if depth >= 4 {
			n = 0
		}
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.WriteString(quickTexts[r.Intn(len(quickTexts))])
			} else {
				gen(depth + 1)
			}
		}
		b.WriteString("</" + tag + ">")
	}
	b.WriteString("<root>")
	for i := 0; i < 1+r.Intn(3); i++ {
		gen(0)
	}
	b.WriteString("</root>")
	return b.String()
}

type queryGen struct {
	r       *rand.Rand
	counter int
}

func (g *queryGen) fresh() string {
	g.counter++
	return fmt.Sprintf("v%d", g.counter)
}

func (g *queryGen) step() xqast.Step {
	axis := xqast.Child
	if g.r.Intn(3) == 0 {
		axis = xqast.Descendant
	}
	var test xqast.NodeTest
	switch g.r.Intn(8) {
	case 0:
		test = xqast.StarTest()
	case 1:
		test = xqast.TextTest()
	default:
		test = xqast.NameTest(quickTags[g.r.Intn(len(quickTags))])
	}
	return xqast.Step{Axis: axis, Test: test}
}

func (g *queryGen) elementStep() xqast.Step {
	s := g.step()
	if s.Test.Kind == xqast.TestText {
		s.Test = xqast.NameTest(quickTags[g.r.Intn(len(quickTags))])
	}
	return s
}

func (g *queryGen) path(env []string, steps int, element bool) xqast.Path {
	p := xqast.Path{Var: env[g.r.Intn(len(env))]}
	for i := 0; i < steps; i++ {
		if element || i < steps-1 {
			p.Steps = append(p.Steps, g.elementStep())
		} else {
			p.Steps = append(p.Steps, g.step())
		}
	}
	return p
}

func (g *queryGen) cond(env []string, depth int) xqast.Cond {
	switch g.r.Intn(5) {
	case 0:
		return xqast.TrueCond{}
	case 1:
		if depth < 2 {
			return xqast.Not{C: g.cond(env, depth+1)}
		}
		fallthrough
	case 2:
		lhs := xqast.Operand{Path: g.path(env, 1+g.r.Intn(2), false)}
		rhs := xqast.Operand{IsLiteral: true, Lit: quickTexts[g.r.Intn(len(quickTexts))]}
		ops := []xqast.RelOp{xqast.OpEq, xqast.OpNe, xqast.OpLt, xqast.OpGe}
		return xqast.Compare{LHS: lhs, Op: ops[g.r.Intn(len(ops))], RHS: rhs}
	default:
		return xqast.Exists{Path: g.path(env, 1+g.r.Intn(2), false)}
	}
}

func (g *queryGen) expr(env []string, depth int) xqast.Expr {
	max := 7
	if depth >= 3 {
		max = 3 // only leaves
	}
	switch g.r.Intn(max) {
	case 0:
		return xqast.Text{Data: "t"}
	case 1:
		return xqast.VarRef{Var: env[g.r.Intn(len(env))]}
	case 2:
		return xqast.PathExpr{Path: g.path(env, 1+g.r.Intn(2), false)}
	case 3:
		return xqast.Element{Name: "x", Child: g.expr(env, depth+1)}
	case 4:
		return xqast.Sequence{Items: []xqast.Expr{g.expr(env, depth+1), g.expr(env, depth+1)}}
	case 5:
		return xqast.If{Cond: g.cond(env, 0), Then: g.expr(env, depth+1), Else: g.expr(env, depth+1)}
	default:
		v := g.fresh()
		in := g.path(env, 1+g.r.Intn(2), g.r.Intn(4) != 0)
		body := g.expr(append(append([]string(nil), env...), v), depth+1)
		return xqast.For{Var: v, In: in, Return: body}
	}
}

func (g *queryGen) query() string {
	root := xqast.Element{Name: "out", Child: g.expr([]string{xqast.RootVar}, 0)}
	return xqast.Format(&xqast.Query{Root: root})
}

func TestWorkloadEquivalence(t *testing.T) {
	modes := []engine.Mode{engine.ModeGCX, engine.ModeStaticOnly, engine.ModeFullBuffer}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &queryGen{r: r}
		n := 2 + r.Intn(3)
		srcs := make([]string, n)
		for i := range srcs {
			srcs[i] = g.query()
		}
		doc := randDoc(r)

		for _, mode := range modes {
			want := make([]string, n)
			var maxTokens int64
			for i, src := range srcs {
				c, err := engine.Compile(src, engine.Config{Mode: mode})
				if err != nil {
					t.Logf("seed %d: solo compile: %v\n%s", seed, err, src)
					return false
				}
				var out strings.Builder
				st, err := c.Run(strings.NewReader(doc), &out)
				if err != nil {
					t.Logf("seed %d %s: solo run: %v\n%s\ndoc: %s", seed, mode, err, src, doc)
					return false
				}
				want[i] = out.String()
				if st.TokensRead > maxTokens {
					maxTokens = st.TokensRead
				}
			}

			w, err := Compile(srcs, Config{Engine: engine.Config{Mode: mode}, Batch: 1})
			if err != nil {
				t.Logf("seed %d %s: workload compile: %v", seed, mode, err)
				return false
			}
			bufs := make([]*strings.Builder, n)
			for i := range bufs {
				bufs[i] = &strings.Builder{}
			}
			st, qs, err := w.RunChecked(strings.NewReader(doc), toIOWriters(bufs))
			if err != nil {
				t.Logf("seed %d %s: workload run: %v\nqueries:\n%s\ndoc: %s",
					seed, mode, err, strings.Join(srcs, "\n---\n"), doc)
				return false
			}
			for i := range bufs {
				if bufs[i].String() != want[i] {
					t.Logf("seed %d %s: query %d mismatch\nquery:\n%s\ndoc: %s\nshared: %s\nsolo:   %s",
						seed, mode, i, srcs[i], doc, bufs[i].String(), want[i])
					return false
				}
			}
			if st.TokensRead != maxTokens {
				t.Logf("seed %d %s: shared pass read %d tokens, max solo %d\nqueries:\n%s\ndoc: %s",
					seed, mode, st.TokensRead, maxTokens, strings.Join(srcs, "\n---\n"), doc)
				return false
			}
			if mode == engine.ModeGCX {
				for i, q := range qs {
					if q.RoleAssignments != q.RoleRemovals {
						t.Logf("seed %d: query %d unbalanced: %d/%d", seed, i, q.RoleAssignments, q.RoleRemovals)
						return false
					}
				}
			}
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 20
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadEquivalenceBatched: with the default batch size the outputs
// are still byte-identical; only the token-demand schedule may overshoot
// (bounded by one batch past the most demanding solo run).
func TestWorkloadEquivalenceBatched(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &queryGen{r: r}
		n := 2 + r.Intn(3)
		srcs := make([]string, n)
		for i := range srcs {
			srcs[i] = g.query()
		}
		doc := randDoc(r)

		want := make([]string, n)
		var maxTokens int64
		for i, src := range srcs {
			c, err := engine.Compile(src, engine.Config{Mode: engine.ModeGCX})
			if err != nil {
				return false
			}
			var out strings.Builder
			st, err := c.Run(strings.NewReader(doc), &out)
			if err != nil {
				t.Logf("seed %d: solo run: %v\n%s\ndoc: %s", seed, err, src, doc)
				return false
			}
			want[i] = out.String()
			if st.TokensRead > maxTokens {
				maxTokens = st.TokensRead
			}
		}
		w, err := Compile(srcs, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
		if err != nil {
			return false
		}
		bufs := make([]*strings.Builder, n)
		for i := range bufs {
			bufs[i] = &strings.Builder{}
		}
		st, _, err := w.RunChecked(strings.NewReader(doc), toIOWriters(bufs))
		if err != nil {
			t.Logf("seed %d: workload run: %v", seed, err)
			return false
		}
		for i := range bufs {
			if bufs[i].String() != want[i] {
				t.Logf("seed %d: query %d mismatch\nquery:\n%s\ndoc: %s\nshared: %s\nsolo:   %s",
					seed, i, srcs[i], doc, bufs[i].String(), want[i])
				return false
			}
		}
		if st.TokensRead < maxTokens || st.TokensRead > maxTokens+defaultBatch {
			t.Logf("seed %d: shared pass read %d tokens, solo max %d (batch %d)",
				seed, st.TokensRead, maxTokens, defaultBatch)
			return false
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
