package workload

import (
	"io"
	"strings"
	"testing"

	"gcx/internal/engine"
)

// toIOWriters adapts a slice of builders to the Run signature.
func toIOWriters(bufs []*strings.Builder) []io.Writer {
	ws := make([]io.Writer, len(bufs))
	for i, b := range bufs {
		ws[i] = b
	}
	return ws
}

var testQueries = []string{
	`<r1>{ for $b in /bib/book return if (exists($b/price)) then $b/title else () }</r1>`,
	`<r2>{ for $b in /bib/book return $b/author }</r2>`,
	`<r3>{ for $p in /bib/book/price return <p>{ $p/text() }</p> }</r3>`,
}

const testDoc = `<bib>
<book><title>T1</title><author>A1</author><price>10</price></book>
<book><title>T2</title><author>A2</author></book>
<book><title>T3</title><author>A3</author><price>30</price></book>
</bib>`

// soloRun evaluates one query alone and returns output and stats.
func soloRun(t *testing.T, src, doc string, mode engine.Mode) (string, engine.Stats) {
	t.Helper()
	c, err := engine.Compile(src, engine.Config{Mode: mode})
	if err != nil {
		t.Fatalf("solo compile: %v", err)
	}
	var out strings.Builder
	st, err := c.Run(strings.NewReader(doc), &out)
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return out.String(), st
}

func runWorkload(t *testing.T, srcs []string, doc string, cfg Config) ([]string, Stats, []QueryStats) {
	t.Helper()
	c, err := Compile(srcs, cfg)
	if err != nil {
		t.Fatalf("workload compile: %v", err)
	}
	bufs := make([]*strings.Builder, len(srcs))
	for i := range bufs {
		bufs[i] = &strings.Builder{}
	}
	st, qs, err := c.RunChecked(strings.NewReader(doc), toIOWriters(bufs))
	if err != nil {
		t.Fatalf("workload run: %v", err)
	}
	got := make([]string, len(srcs))
	for i := range bufs {
		got[i] = bufs[i].String()
	}
	return got, st, qs
}

func TestWorkloadMatchesSoloOutputs(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModeGCX, engine.ModeStaticOnly, engine.ModeFullBuffer} {
		t.Run(mode.String(), func(t *testing.T) {
			var want []string
			var maxTokens int64
			for _, q := range testQueries {
				out, st := soloRun(t, q, testDoc, mode)
				want = append(want, out)
				if st.TokensRead > maxTokens {
					maxTokens = st.TokensRead
				}
			}
			got, st, qs := runWorkload(t, testQueries, testDoc, Config{Engine: engine.Config{Mode: mode}, Batch: 1})
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("query %d output mismatch:\n got: %s\nwant: %s", i, got[i], want[i])
				}
			}
			if st.TokensRead != maxTokens {
				t.Errorf("shared pass read %d tokens, max solo run read %d", st.TokensRead, maxTokens)
			}
			for i, q := range qs {
				if q.Err != nil {
					t.Errorf("query %d error: %v", i, q.Err)
				}
				if q.OutputBytes != int64(len(want[i])) {
					t.Errorf("query %d output bytes %d, want %d", i, q.OutputBytes, len(want[i]))
				}
				if mode == engine.ModeGCX && q.RoleAssignments != q.RoleRemovals {
					t.Errorf("query %d roles unbalanced: %d assigned, %d removed", i, q.RoleAssignments, q.RoleRemovals)
				}
			}
		})
	}
}

// TestWorkloadPooledReruns: pooled run states must produce identical
// results run after run.
func TestWorkloadPooledReruns(t *testing.T) {
	c, err := Compile(testQueries, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	for run := 0; run < 5; run++ {
		bufs := make([]*strings.Builder, len(testQueries))
		for i := range bufs {
			bufs[i] = &strings.Builder{}
		}
		_, _, err := c.RunChecked(strings.NewReader(testDoc), toIOWriters(bufs))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 0 {
			for _, b := range bufs {
				first = append(first, b.String())
			}
			continue
		}
		for i, b := range bufs {
			if b.String() != first[i] {
				t.Fatalf("run %d query %d output changed:\n got: %s\nwant: %s", run, i, b.String(), first[i])
			}
		}
	}
}

// TestWorkloadStreamError: malformed input surfaces through every member
// that was still reading.
func TestWorkloadStreamError(t *testing.T) {
	c, err := Compile(testQueries, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]*strings.Builder, len(testQueries))
	for i := range bufs {
		bufs[i] = &strings.Builder{}
	}
	_, qs, err := c.Run(strings.NewReader("<bib><book><title>T</book></bib>"), toIOWriters(bufs))
	if err == nil {
		t.Fatal("expected a stream error")
	}
	for i, q := range qs {
		if q.Err == nil {
			t.Errorf("query %d: expected a per-query error", i)
		}
	}
}

// TestWorkloadTTFRAbsentWithoutOutput: TTFR is a measurement of the
// first result byte; a member (or pass) that never produced one reports
// 0 — "no first result" — not a zero-latency sample. A successful pass
// stamps every member and aggregates the earliest.
func TestWorkloadTTFRAbsentWithoutOutput(t *testing.T) {
	c, err := Compile(testQueries, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]*strings.Builder, len(testQueries))
	for i := range bufs {
		bufs[i] = &strings.Builder{}
	}
	// Garbage from byte one: no member emits anything, so no member has a
	// first result.
	st, qs, err := c.Run(strings.NewReader("<"), toIOWriters(bufs))
	if err == nil {
		t.Fatal("expected a stream error")
	}
	if st.TTFRNanos != 0 {
		t.Fatalf("pass with no output reports TTFR %d, want 0 (absent)", st.TTFRNanos)
	}
	for i, q := range qs {
		if q.TTFRNanos != 0 {
			t.Errorf("query %d produced no output but reports TTFR %d", i, q.TTFRNanos)
		}
	}

	// A clean pass: every member emits at least its wrapper, so every
	// member has a TTFR and the aggregate is the earliest of them.
	for i := range bufs {
		bufs[i] = &strings.Builder{}
	}
	st, qs, err = c.Run(strings.NewReader(testDoc), toIOWriters(bufs))
	if err != nil {
		t.Fatal(err)
	}
	earliest := int64(0)
	for i, q := range qs {
		if q.TTFRNanos <= 0 {
			t.Errorf("query %d produced output but reports no TTFR", i)
		}
		if earliest == 0 || q.TTFRNanos < earliest {
			earliest = q.TTFRNanos
		}
	}
	if st.TTFRNanos != earliest {
		t.Fatalf("aggregate TTFR %d, want earliest member %d", st.TTFRNanos, earliest)
	}
}

func TestWorkloadSingleQueryDegenerate(t *testing.T) {
	want, _ := soloRun(t, testQueries[0], testDoc, engine.ModeGCX)
	got, _, _ := runWorkload(t, testQueries[:1], testDoc, Config{Engine: engine.Config{Mode: engine.ModeGCX}})
	if got[0] != want {
		t.Errorf("single-member workload output mismatch:\n got: %s\nwant: %s", got[0], want)
	}
}
