package buffer

// slabSize is the number of Nodes carved from one backing allocation.
const slabSize = 512

// arena is the per-run node allocator: nodes are carved from slabs that
// stay owned by the arena, unlink returns reclaimed nodes to a freelist
// for immediate reuse, and Reset reclaims everything wholesale — a run
// leaves no node garbage for the GC regardless of how many nodes it
// buffered and purged.
//
// A node handed back via put must be unreachable from the live tree
// (guaranteed by the deletion discipline: only finished, role-free,
// unpinned, uncovered subtrees are unlinked).
type arena struct {
	slabs [][]Node
	slab  int // index of the slab currently being carved
	next  int // next unused index in slabs[slab]
	free  []*Node
}

//gcxlint:noalloc
func (a *arena) get() *Node {
	if n := len(a.free); n > 0 {
		nd := a.free[n-1]
		a.free = a.free[:n-1]
		nd.recycle()
		return nd
	}
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Node, slabSize)) //gcxlint:allocok slab growth tracks the document's buffer peak; slabs are retained across runs
	}
	s := a.slabs[a.slab]
	nd := &s[a.next]
	a.next++
	if a.next == len(s) {
		a.slab++
		a.next = 0
	}
	nd.recycle()
	return nd
}

//gcxlint:noalloc
func (a *arena) put(n *Node) { a.free = append(a.free, n) }

// reset makes every slab node available again without releasing the slabs.
// Text references of carved nodes are dropped eagerly: nodes are only
// cleared lazily on get, and an idle (pooled) buffer must not pin the
// previous document's character data until those slots happen to be
// re-carved.
//
//gcxlint:keep slabs retaining the slabs is the arena's purpose; only their Text references are dropped
func (a *arena) reset() {
	for i := 0; i < a.slab && i < len(a.slabs); i++ {
		clearText(a.slabs[i])
	}
	if a.slab < len(a.slabs) {
		clearText(a.slabs[a.slab][:a.next])
	}
	a.slab = 0
	a.next = 0
	a.free = a.free[:0]
}

//gcxlint:noalloc
func clearText(s []Node) {
	for i := range s {
		s[i].Text = ""
	}
}
