package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// TestQuickBufferInvariants drives the buffer through random operation
// sequences (append, role add, finish, pin/unpin, signOff) and verifies
// the structural invariants after every step:
//
//   - link consistency (parent/child/sibling pointers agree),
//   - subtree role counters equal the recomputed sums,
//   - subtree pin counters equal the recomputed sums,
//   - unlinked nodes are never reachable from the root,
//   - node accounting (LiveNodes) matches the reachable count.
func TestQuickBufferInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		syms := xmlstream.NewSymTab()
		const roles = 5
		agg := []bool{false, false, true, false, true, false}
		b := New(syms, roles, agg)

		type tracked struct {
			n      *Node
			roles  []xqast.Role // roles assigned (for signoff balance)
			pinned bool
		}
		var nodes []*tracked
		open := []*Node{b.Root()} // stack of unfinished nodes

		for step := 0; step < 200; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3: // append element under the innermost open node
				parent := open[len(open)-1]
				n := b.AppendElement(parent, syms.Intern([]string{"a", "b", "c"}[r.Intn(3)]))
				tr := &tracked{n: n}
				// Assign 0-2 roles.
				for i := 0; i < r.Intn(3); i++ {
					role := xqast.Role(1 + r.Intn(roles))
					b.AddRole(n, role, 1)
					tr.roles = append(tr.roles, role)
				}
				nodes = append(nodes, tr)
				open = append(open, n)
			case 4: // append text
				parent := open[len(open)-1]
				b.AppendText(parent, "t")
			case 5, 6: // close the innermost open element
				if len(open) > 1 {
					n := open[len(open)-1]
					open = open[:len(open)-1]
					b.Finish(n)
				}
			case 7: // pin/unpin a random live node
				if len(nodes) > 0 {
					tr := nodes[r.Intn(len(nodes))]
					if tr.n.Unlinked() {
						break
					}
					if tr.pinned {
						b.Unpin(tr.n)
						tr.pinned = false
					} else {
						b.Pin(tr.n)
						tr.pinned = true
					}
				}
			case 8, 9: // sign off one previously assigned role instance
				if len(nodes) > 0 {
					tr := nodes[r.Intn(len(nodes))]
					if len(tr.roles) > 0 && !tr.n.Unlinked() {
						role := tr.roles[len(tr.roles)-1]
						tr.roles = tr.roles[:len(tr.roles)-1]
						if err := b.SignOff(tr.n, nil, role); err != nil {
							t.Logf("seed %d step %d: signoff: %v", seed, step, err)
							return false
						}
					}
				}
			}
			if err := checkInvariants(b); err != "" {
				t.Logf("seed %d step %d: %s\n%s", seed, step, err, b.Dump())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants recomputes all derived state and compares with the
// maintained counters.
func checkInvariants(b *Buffer) string {
	live := int64(0)
	var walk func(n *Node) (roleSum int64, pinSum int32, msg string)
	walk = func(n *Node) (int64, int32, string) {
		live++
		if n.unlinked {
			return 0, 0, "unlinked node reachable from root"
		}
		roleSum := int64(n.selfTotal)
		pinSum := int32(0)
		var prev *Node
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if c.Parent != n {
				return 0, 0, "child with wrong parent pointer"
			}
			if c.PrevSib != prev {
				return 0, 0, "broken prev-sibling link"
			}
			rs, ps, msg := walk(c)
			if msg != "" {
				return 0, 0, msg
			}
			roleSum += rs
			pinSum += ps
			prev = c
		}
		if n.LastChild != prev {
			return 0, 0, "broken last-child link"
		}
		if roleSum != n.subTotal {
			return 0, 0, "subtree role counter mismatch"
		}
		// subPins counts pins in the subtree; pins on n itself are
		// included in n.subPins but not in any child's.
		selfPins := n.subPins - pinSum
		if selfPins < 0 {
			return 0, 0, "subtree pin counter mismatch"
		}
		return roleSum, n.subPins, ""
	}
	_, _, msg := walk(b.root)
	if msg != "" {
		return msg
	}
	if live != b.stats.LiveNodes {
		return "LiveNodes accounting mismatch"
	}
	return ""
}
