package buffer

import (
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// target is a node reached by a signOff path together with its derivation
// multiplicity (the number of distinct step-binding derivations reaching
// it). Role assignment during projection counts derivations the same way —
// a node reached twice (e.g. //a//b over /a/a/b, Figure 4(c)) holds the
// role twice and must lose it twice.
type target struct {
	node *Node
	mult int
}

// SignOff implements the runtime semantics of signOff($x/π, r)
// (Section 3): all nodes reachable from binding via π lose role r (once
// per derivation), and localized garbage collection (Figure 10) runs from
// each updated node.
//
// If the binding's subtree is still unfinished, the projector is first told
// to cancel future assignments of r below binding, so that tokens read
// later are neither tagged nor buffered on behalf of a role that has
// already been signed off.
func (b *Buffer) SignOff(binding *Node, steps []xqast.Step, role xqast.Role) error {
	b.stats.SignOffs++
	if b.canceller != nil && !binding.finished {
		b.canceller.CancelRole(binding, role)
	}
	targets := b.resolve(binding, steps)
	isAgg := b.aggregate[role]
	for _, t := range targets {
		if err := b.removeRole(t.node, role, t.mult); err != nil {
			return err
		}
		if isAgg {
			// Removing an aggregate role uncovers the subtree: prune what
			// only the cover kept alive.
			b.sweep(t.node)
		}
		if !t.node.unlinked {
			b.collect(t.node)
		}
	}
	return nil
}

// Resolve exposes signOff path resolution for tests and diagnostics: it
// returns the nodes reached by steps from binding, in document order, with
// derivation multiplicities.
func (b *Buffer) Resolve(binding *Node, steps []xqast.Step) []*Node {
	ts := b.resolve(binding, steps)
	out := make([]*Node, len(ts))
	for i, t := range ts {
		out[i] = t.node
	}
	return out
}

func (b *Buffer) resolve(start *Node, steps []xqast.Step) []target {
	cur := []target{{start, 1}}
	for _, s := range steps {
		var next []target
		idx := map[*Node]int{}
		add := func(n *Node, m int) {
			if i, ok := idx[n]; ok {
				next[i].mult += m
				return
			}
			idx[n] = len(next)
			next = append(next, target{n, m})
		}
		for _, t := range cur {
			b.stepMatches(t.node, s, t.mult, add)
		}
		cur = next
	}
	return cur
}

// stepMatches enumerates the matches of one location step from ctx in
// document order. With a [1] predicate, only the first match per context is
// reported — mirroring first-witness role assignment during projection.
func (b *Buffer) stepMatches(ctx *Node, s xqast.Step, mult int, add func(*Node, int)) {
	switch s.Axis {
	case xqast.Child:
		for c := ctx.FirstChild; c != nil; c = c.NextSib {
			if matchTest(b.syms, s.Test, c) {
				add(c, mult)
				if s.First {
					return
				}
			}
		}
	case xqast.Descendant:
		b.walkDescendants(ctx, s, mult, add)
	case xqast.DescendantOrSelf:
		if matchTest(b.syms, s.Test, ctx) {
			add(ctx, mult)
			if s.First {
				return
			}
		}
		b.walkDescendants(ctx, s, mult, add)
	}
}

// walkDescendants reports matching proper descendants of ctx in document
// order; with First set it stops after the first match.
func (b *Buffer) walkDescendants(ctx *Node, s xqast.Step, mult int, add func(*Node, int)) {
	var dfs func(n *Node) bool
	dfs = func(n *Node) bool {
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if matchTest(b.syms, s.Test, c) {
				add(c, mult)
				if s.First {
					return true
				}
			}
			if dfs(c) {
				return true
			}
		}
		return false
	}
	dfs(ctx)
}

// matchTest evaluates a node test against a buffered node.
func matchTest(syms *xmlstream.SymTab, t xqast.NodeTest, n *Node) bool {
	switch t.Kind {
	case xqast.TestName:
		return n.Kind == KindElement && n.Sym == syms.Lookup(t.Name)
	case xqast.TestStar:
		return n.Kind == KindElement
	case xqast.TestText:
		return n.Kind == KindText
	case xqast.TestNode:
		// node() also matches the virtual root: a dos::node() step from
		// the root variable includes it (its "self"), and the capture
		// assigns the role there.
		return n.Kind == KindElement || n.Kind == KindText || n.Kind == KindRoot
	default:
		return false
	}
}

// MatchTest exposes node-test matching for the evaluator's cursors.
func (b *Buffer) MatchTest(t xqast.NodeTest, n *Node) bool {
	return matchTest(b.syms, t, n)
}
