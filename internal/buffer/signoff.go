package buffer

import (
	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// target is a node reached by a signOff path together with its derivation
// multiplicity (the number of distinct step-binding derivations reaching
// it). Role assignment during projection counts derivations the same way —
// a node reached twice (e.g. //a//b over /a/a/b, Figure 4(c)) holds the
// role twice and must lose it twice.
type target struct {
	node *Node
	mult int
}

// SignOff implements the runtime semantics of signOff($x/π, r)
// (Section 3): all nodes reachable from binding via π lose role r (once
// per derivation), and localized garbage collection (Figure 10) runs from
// each updated node.
//
// If the binding's subtree is still unfinished, the projector is first told
// to cancel future assignments of r below binding, so that tokens read
// later are neither tagged nor buffered on behalf of a role that has
// already been signed off.
func (b *Buffer) SignOff(binding *Node, steps []xqast.Step, role xqast.Role) error {
	b.stats.SignOffs++
	if b.canceller != nil && !binding.finished {
		b.canceller.CancelRole(binding, role)
	}
	targets := b.resolve(binding, steps)
	isAgg := b.aggregate[role]
	for _, t := range targets {
		if err := b.removeRole(t.node, role, t.mult); err != nil {
			return err
		}
		if isAgg {
			// Removing an aggregate role uncovers the subtree: prune what
			// only the cover kept alive.
			b.sweep(t.node)
		}
		if !t.node.unlinked {
			b.collect(t.node)
		}
	}
	return nil
}

// Resolve exposes signOff path resolution for tests and diagnostics: it
// returns the nodes reached by steps from binding, in document order, with
// derivation multiplicities.
func (b *Buffer) Resolve(binding *Node, steps []xqast.Step) []*Node {
	ts := b.resolve(binding, steps)
	out := make([]*Node, len(ts))
	for i, t := range ts {
		out[i] = t.node
	}
	return out
}

// resolve walks steps from start through the buffered tree using the
// buffer's ping-pong scratch slices, so steady-state signOff execution
// does not allocate. The returned slice is valid until the next resolve.
func (b *Buffer) resolve(start *Node, steps []xqast.Step) []target {
	cur := append(b.resA[:0], target{start, 1})
	next := b.resB[:0]
	for _, s := range steps {
		next = next[:0]
		for _, t := range cur {
			next = b.stepMatches(t.node, s, t.mult, next)
		}
		cur, next = next, cur
	}
	b.resA, b.resB = cur, next
	return cur
}

// addTarget merges (n, m) into out: a node reached through several
// derivations accumulates its multiplicities (Figure 4(c)). Target sets
// are small, so a linear scan beats a map.
func addTarget(out []target, n *Node, m int) []target {
	for i := range out {
		if out[i].node == n {
			out[i].mult += m
			return out
		}
	}
	return append(out, target{n, m})
}

// stepMatches appends the matches of one location step from ctx in
// document order. With a [1] predicate, only the first match per context is
// reported — mirroring first-witness role assignment during projection.
func (b *Buffer) stepMatches(ctx *Node, s xqast.Step, mult int, out []target) []target {
	switch s.Axis {
	case xqast.Child:
		for c := ctx.FirstChild; c != nil; c = c.NextSib {
			if matchTest(b.syms, s.Test, c) {
				out = addTarget(out, c, mult)
				if s.First {
					return out
				}
			}
		}
	case xqast.Descendant:
		out, _ = b.walkDescendants(ctx, s, mult, out)
	case xqast.DescendantOrSelf:
		if matchTest(b.syms, s.Test, ctx) {
			out = addTarget(out, ctx, mult)
			if s.First {
				return out
			}
		}
		out, _ = b.walkDescendants(ctx, s, mult, out)
	}
	return out
}

// walkDescendants appends matching proper descendants of ctx in document
// order; with First set it stops after the first match (stop=true).
func (b *Buffer) walkDescendants(ctx *Node, s xqast.Step, mult int, out []target) (_ []target, stop bool) {
	for c := ctx.FirstChild; c != nil; c = c.NextSib {
		if matchTest(b.syms, s.Test, c) {
			out = addTarget(out, c, mult)
			if s.First {
				return out, true
			}
		}
		if out, stop = b.walkDescendants(c, s, mult, out); stop {
			return out, true
		}
	}
	return out, false
}

// matchTest evaluates a node test against a buffered node.
func matchTest(syms *xmlstream.SymTab, t xqast.NodeTest, n *Node) bool {
	switch t.Kind {
	case xqast.TestName:
		return n.Kind == KindElement && n.Sym == syms.Lookup(t.Name)
	case xqast.TestStar:
		return n.Kind == KindElement
	case xqast.TestText:
		return n.Kind == KindText
	case xqast.TestNode:
		// node() also matches the virtual root: a dos::node() step from
		// the root variable includes it (its "self"), and the capture
		// assigns the role there.
		return n.Kind == KindElement || n.Kind == KindText || n.Kind == KindRoot
	default:
		return false
	}
}

// MatchTest exposes node-test matching for the evaluator's cursors.
func (b *Buffer) MatchTest(t xqast.NodeTest, n *Node) bool {
	return matchTest(b.syms, t, n)
}
