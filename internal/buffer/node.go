// Package buffer implements the GCX buffer manager (Sections 5 and 6 of the
// paper): a projected document tree whose nodes carry role multisets, with
// active garbage collection triggered by signOff statements.
//
// The buffer datastructure follows Section 6 ("Buffer Representation"):
// a single tree with parent/child and sibling pointers, tag names replaced
// by integer symbols, and per-node role multisets.
//
// Deletion discipline (Section 5, Figure 10): a node is *irrelevant* when
// neither it nor any descendant carries a role (and, in this
// implementation, no aggregate role on an ancestor covers it and no
// evaluator cursor pins it). Irrelevant nodes are deleted as soon as a
// signOff makes them irrelevant; "unfinished" nodes (closing tag not yet
// read) and pinned nodes are deleted lazily when they finish or are
// unpinned.
package buffer

import (
	"fmt"
	"strings"

	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Kind distinguishes node kinds in the buffer tree.
type Kind uint8

const (
	// KindRoot is the virtual document root (the paper's root node).
	KindRoot Kind = iota + 1
	// KindElement is an element node.
	KindElement
	// KindText is a character-data node.
	KindText
)

// roleEntry is one role with its multiplicity in the node's role multiset.
type roleEntry struct {
	role xqast.Role
	n    int32
}

// Node is a buffered document node.
type Node struct {
	Parent     *Node
	FirstChild *Node
	LastChild  *Node
	NextSib    *Node
	PrevSib    *Node

	// Sym is the interned tag name (elements only).
	Sym xmlstream.Sym
	// Text is the character data (text nodes only).
	Text string

	Kind Kind
	// finished is set once the closing tag has been read from the stream.
	finished bool
	// sealed is set when a DTD content-model fact proves the node's
	// content is complete before its closing tag arrives (schema-based
	// scheduling, Koch/Scherzinger cs/0406016). A sealed node reports
	// Finished() to cursors — evaluation over the region can conclude and
	// its signOffs can flush buffered descendants early — but physical
	// reclamation (deletable) still waits for the real closing tag, so an
	// input that violates the asserted schema can corrupt results but
	// never the arena.
	sealed bool
	// unlinked marks nodes already removed from the tree (debug aid; a
	// deleted node must never be touched again).
	unlinked bool

	// aggCount counts aggregate-role instances on this node; descendants
	// of a node with aggCount > 0 are covered and must not be reclaimed.
	aggCount int32
	// selfTotal is the total number of role instances on this node
	// (including aggregate ones).
	selfTotal int32
	// subTotal is the total number of role instances in the subtree rooted
	// here (including selfTotal).
	subTotal int64
	// subPins counts evaluator pins in the subtree rooted here.
	subPins int32

	roles []roleEntry

	// noMore lists child tags that can no longer occur below this node,
	// derived from DTD content models by the projector (schema-aware
	// early region termination; see package dtd). Nil without a schema.
	noMore []xmlstream.Sym
}

// recycle clears n for reuse by the arena, retaining the capacity of its
// role and schema-fact slices.
//
//gcxlint:noalloc
func (n *Node) recycle() {
	roles := n.roles[:0]
	noMore := n.noMore[:0]
	*n = Node{}
	n.roles = roles
	n.noMore = noMore
}

// MarkNoMore records that no further child with the given tag can occur
// (duplicates are ignored).
func (n *Node) MarkNoMore(sym xmlstream.Sym) {
	for _, s := range n.noMore {
		if s == sym {
			return
		}
	}
	n.noMore = append(n.noMore, sym)
}

// NoMore reports whether a child with the given tag can no longer occur.
func (n *Node) NoMore(sym xmlstream.Sym) bool {
	for _, s := range n.noMore {
		if s == sym {
			return true
		}
	}
	return false
}

// Finished reports whether the node's content is complete: its closing
// tag has been read, or a schema fact sealed it early (see Buffer.Seal).
func (n *Node) Finished() bool { return n.finished || n.sealed }

// Sealed reports whether the node was schema-sealed before its closing
// tag.
func (n *Node) Sealed() bool { return n.sealed }

// Unlinked reports whether the node has been reclaimed.
func (n *Node) Unlinked() bool { return n.unlinked }

// RoleCount returns the multiplicity of role r on n.
func (n *Node) RoleCount(r xqast.Role) int {
	for _, e := range n.roles {
		if e.role == r {
			return int(e.n)
		}
	}
	return 0
}

// TotalRoles returns the number of role instances on n.
func (n *Node) TotalRoles() int { return int(n.selfTotal) }

// SubtreeRoles returns the number of role instances in n's subtree.
func (n *Node) SubtreeRoles() int64 { return n.subTotal }

// Roles returns the role multiset as a sorted, human-readable string like
// "{r2,r3,r3}". Empty role sets render as "{}".
func (n *Node) RolesString() string {
	var ids []xqast.Role
	for _, e := range n.roles {
		for i := int32(0); i < e.n; i++ {
			ids = append(ids, e.role)
		}
	}
	// Roles are appended in assignment order; sort for stable output.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "r%d", id)
	}
	b.WriteByte('}')
	return b.String()
}

// Covered reports whether an ancestor of n (strictly above it) carries an
// aggregate role, i.e. n is kept alive by subtree inheritance (Section 6,
// "Aggregate Roles").
func (n *Node) Covered() bool {
	for a := n.Parent; a != nil; a = a.Parent {
		if a.aggCount > 0 {
			return true
		}
	}
	return false
}
