package buffer

import "testing"

// TestSealFinishesWithoutDeleting: sealing makes a node report Finished()
// (so cursors and blocking waits stop) but never marks it physically
// finished — deletion still waits for the real end tag, keeping the arena
// safe even when a schema-invalid document contradicts the seal.
func TestSealFinishesWithoutDeleting(t *testing.T) {
	b, syms := build(false)
	n := el(b, syms, b.Root(), "a")
	if n.Finished() || n.Sealed() {
		t.Fatal("fresh element must be open")
	}
	b.AddRole(n, 1, 1)
	b.Seal(n)
	if !n.Finished() || !n.Sealed() {
		t.Fatal("sealed element must report Finished")
	}
	// Sealed-but-unfinished nodes survive a signOff: the arena defers the
	// physical delete to the real end tag.
	if err := b.SignOff(n, nil, 1); err != nil {
		t.Fatalf("signOff: %v", err)
	}
	if got := b.Stats().NodesDeleted; got != 0 {
		t.Fatalf("sealed node was deleted before its end tag (deleted=%d)", got)
	}
	// The real finish releases it.
	b.Finish(n)
	if got := b.Stats().NodesDeleted; got == 0 {
		t.Fatal("finished irrelevant node must be reclaimed")
	}
}

// TestSealOnlyElements: sealing is meaningful only for elements; text and
// root nodes are unaffected.
func TestSealOnlyElements(t *testing.T) {
	b, syms := build(false)
	n := el(b, syms, b.Root(), "a")
	txt := b.AppendText(n, "x")
	b.Seal(txt)
	b.Seal(b.Root())
	if txt.Sealed() || b.Root().Sealed() {
		t.Fatal("Seal must only mark elements")
	}
}
