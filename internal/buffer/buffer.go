package buffer

import (
	"fmt"
	"strings"

	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// Stats tracks the buffer accounting the benchmarks report: the paper's
// primary measured quantity is the high watermark of buffered data.
type Stats struct {
	LiveNodes int64 // currently buffered nodes
	PeakNodes int64 // high watermark of LiveNodes
	LiveBytes int64 // estimated bytes of live buffer content
	PeakBytes int64 // high watermark of LiveBytes

	NodesAppended int64 // total nodes ever buffered
	NodesDeleted  int64 // total nodes reclaimed

	RoleAssignments int64 // total role instances assigned
	RoleRemovals    int64 // total role instances removed
	SignOffs        int64 // signOff statements processed
	GCSweeps        int64 // aggregate-role subtree sweeps
}

// nodeBaseBytes approximates the in-memory size of a Node (pointers, flags,
// counters). The exact constant is irrelevant for the benchmark shapes; it
// just keeps byte accounting proportional to node counts.
const nodeBaseBytes = 96

// roleEntryBytes approximates the size of one role multiset entry.
const roleEntryBytes = 8

// ErrUndefinedRemoval is returned when a signOff removes a role instance
// that was never assigned — the "undefined" case of Section 2's remρ, which
// indicates a broken rewriting and must surface loudly.
type ErrUndefinedRemoval struct {
	Role xqast.Role
	Node string
}

func (e *ErrUndefinedRemoval) Error() string {
	return fmt.Sprintf("buffer: removal of role r%d from %s is undefined (no instance assigned)", e.Role, e.Node)
}

// Canceller is implemented by the stream projector: when a signOff targets
// a subtree whose closing tag has not been read yet, future role
// assignments (and capture-driven buffering) for that role below the
// binding must be suppressed to preserve the assignment/removal balance.
// See DESIGN.md, "SignOff on unfinished subtrees".
type Canceller interface {
	CancelRole(binding *Node, role xqast.Role)
}

// Buffer is the buffer manager.
type Buffer struct {
	root *Node
	syms *xmlstream.SymTab

	// aggregate[r] reports whether role r is an aggregate (subtree) role.
	aggregate []bool

	// canceller receives future-assignment cancellations; may be nil
	// (e.g. in unit tests without a projector).
	canceller Canceller

	// assigned/removed per role, for the balance invariant.
	assigned []int64
	removed  []int64

	// arena allocates nodes; Reset reclaims them wholesale between runs.
	arena arena

	// resA/resB are the ping-pong scratch buffers of signOff path
	// resolution (reused so steady-state signOffs do not allocate).
	resA, resB []target

	stats Stats
}

// New creates an empty buffer for a query whose role table marks the given
// roles as aggregate. roleCount is the number of roles (role IDs are
// 1..roleCount).
func New(syms *xmlstream.SymTab, roleCount int, aggregate []bool) *Buffer {
	agg := make([]bool, roleCount+1)
	copy(agg, aggregate)
	b := &Buffer{
		syms:      syms,
		aggregate: agg,
		assigned:  make([]int64, roleCount+1),
		removed:   make([]int64, roleCount+1),
	}
	b.initRoot()
	return b
}

func (b *Buffer) initRoot() {
	b.root = b.arena.get()
	b.root.Kind = KindRoot
	b.stats.LiveNodes = 1
	b.stats.LiveBytes = nodeBaseBytes
	b.stats.PeakNodes = 1
	b.stats.PeakBytes = nodeBaseBytes
}

// Reset returns every node to the arena and restores the empty initial
// state for a new run with the same role table. The symbol table and the
// canceller wiring are retained; any node pointer obtained before the
// reset is invalidated.
//
//gcxlint:keep syms the symbol table is shared with the projector and survives runs by contract (the owner bounds it)
//gcxlint:keep aggregate the role table is fixed for the compiled query this buffer serves
//gcxlint:keep canceller projector wiring established once by SetCanceller; runs swap documents, not projectors
func (b *Buffer) Reset() {
	b.arena.reset()
	for i := range b.assigned {
		b.assigned[i] = 0
		b.removed[i] = 0
	}
	// The resolution scratch holds *Node pointers from the last signOff;
	// an idle pooled buffer must not pin freed arena nodes through them.
	clear(b.resA[:cap(b.resA)])
	clear(b.resB[:cap(b.resB)])
	b.resA = b.resA[:0]
	b.resB = b.resB[:0]
	b.stats = Stats{}
	b.initRoot()
}

// SetCanceller wires the stream projector's cancellation hook.
func (b *Buffer) SetCanceller(c Canceller) { b.canceller = c }

// Root returns the virtual document root.
func (b *Buffer) Root() *Node { return b.root }

// Stats returns a snapshot of the buffer accounting.
func (b *Buffer) Stats() Stats { return b.stats }

// Syms returns the symbol table shared with the projector.
func (b *Buffer) Syms() *xmlstream.SymTab { return b.syms }

// AssignedCount and RemovedCount expose per-role accounting for invariant
// checks (every assignment must be matched by a removal, Section 3).
func (b *Buffer) AssignedCount(r xqast.Role) int64 { return b.assigned[r] }
func (b *Buffer) RemovedCount(r xqast.Role) int64  { return b.removed[r] }

func (b *Buffer) bumpPeaks() {
	if b.stats.LiveNodes > b.stats.PeakNodes {
		b.stats.PeakNodes = b.stats.LiveNodes
	}
	if b.stats.LiveBytes > b.stats.PeakBytes {
		b.stats.PeakBytes = b.stats.LiveBytes
	}
}

// AppendElement buffers a new element under parent (as last child) and
// returns it. The node starts unfinished.
func (b *Buffer) AppendElement(parent *Node, sym xmlstream.Sym) *Node {
	n := b.arena.get()
	n.Kind = KindElement
	n.Sym = sym
	n.Parent = parent
	b.link(parent, n)
	b.stats.LiveNodes++
	b.stats.LiveBytes += nodeBaseBytes
	b.stats.NodesAppended++
	b.bumpPeaks()
	return n
}

// AppendText buffers a text node under parent. Text nodes are born
// finished.
func (b *Buffer) AppendText(parent *Node, text string) *Node {
	n := b.arena.get()
	n.Kind = KindText
	n.Text = text
	n.Parent = parent
	n.finished = true
	b.link(parent, n)
	b.stats.LiveNodes++
	b.stats.LiveBytes += nodeBaseBytes + int64(len(text))
	b.stats.NodesAppended++
	b.bumpPeaks()
	return n
}

func (b *Buffer) link(parent, n *Node) {
	if parent.LastChild == nil {
		parent.FirstChild = n
		parent.LastChild = n
		return
	}
	n.PrevSib = parent.LastChild
	parent.LastChild.NextSib = n
	parent.LastChild = n
}

// AddRole assigns k instances of role r to n, updating the subtree
// accounting along the ancestor chain.
func (b *Buffer) AddRole(n *Node, r xqast.Role, k int) {
	if k <= 0 {
		return
	}
	found := false
	for i := range n.roles {
		if n.roles[i].role == r {
			n.roles[i].n += int32(k)
			found = true
			break
		}
	}
	if !found {
		n.roles = append(n.roles, roleEntry{role: r, n: int32(k)})
		b.stats.LiveBytes += roleEntryBytes
	}
	n.selfTotal += int32(k)
	if b.aggregate[r] {
		n.aggCount += int32(k)
	}
	for a := n; a != nil; a = a.Parent {
		a.subTotal += int64(k)
	}
	b.assigned[r] += int64(k)
	b.stats.RoleAssignments += int64(k)
	b.bumpPeaks()
}

// removeRole removes k instances of role r from n. It reports whether the
// removal left the node without that role entry.
func (b *Buffer) removeRole(n *Node, r xqast.Role, k int) error {
	for i := range n.roles {
		if n.roles[i].role != r {
			continue
		}
		if int(n.roles[i].n) < k {
			return &ErrUndefinedRemoval{Role: r, Node: b.describe(n)}
		}
		n.roles[i].n -= int32(k)
		if n.roles[i].n == 0 {
			n.roles = append(n.roles[:i], n.roles[i+1:]...)
			b.stats.LiveBytes -= roleEntryBytes
		}
		n.selfTotal -= int32(k)
		if b.aggregate[r] {
			n.aggCount -= int32(k)
		}
		for a := n; a != nil; a = a.Parent {
			a.subTotal -= int64(k)
		}
		b.removed[r] += int64(k)
		b.stats.RoleRemovals += int64(k)
		return nil
	}
	return &ErrUndefinedRemoval{Role: r, Node: b.describe(n)}
}

func (b *Buffer) describe(n *Node) string {
	switch n.Kind {
	case KindRoot:
		return "root"
	case KindText:
		return fmt.Sprintf("text %q", n.Text)
	default:
		return "<" + b.syms.Name(n.Sym) + ">"
	}
}

// Pin marks n as the current position of an evaluator cursor; pinned nodes
// (and their ancestors) are not reclaimed until unpinned. This is the same
// deferred-deletion treatment the paper gives unfinished nodes.
func (b *Buffer) Pin(n *Node) {
	for a := n; a != nil; a = a.Parent {
		a.subPins++
	}
}

// Unpin releases a pin and reclaims the node if a signOff already made it
// irrelevant.
func (b *Buffer) Unpin(n *Node) {
	for a := n; a != nil; a = a.Parent {
		a.subPins--
	}
	if !n.unlinked {
		b.collect(n)
	}
}

// Finish marks an element as finished (closing tag read) and applies the
// deferred deletion / close-time pruning rules: a finished node that is
// irrelevant and uncovered can never become relevant again and is
// reclaimed immediately.
func (b *Buffer) Finish(n *Node) {
	n.finished = true
	b.collect(n)
}

// Seal marks an element's content as complete ahead of its closing tag,
// on the strength of a DTD content-model fact (schema-based scheduling:
// the projector proved no further child or buffered text can occur).
// Cursors see the node as Finished and conclude the region — evaluation
// and signOff-driven flushing proceed as if the closing tag had been
// read — but the node itself stays physically linked until the real
// closing tag arrives: deletable() checks the raw finished flag, so a
// document that violates the asserted schema cannot dangle projector
// frames or recycle a node that is still on the open-element stack.
func (b *Buffer) Seal(n *Node) {
	if n.Kind == KindElement {
		n.sealed = true
	}
}

// deletable reports whether n can be physically reclaimed right now.
func (b *Buffer) deletable(n *Node) bool {
	return n.Kind != KindRoot &&
		n.finished &&
		n.subTotal == 0 &&
		n.subPins == 0 &&
		!n.Covered()
}

// collect is the localized bottom-up garbage collection of Figure 10:
// starting at n, reclaim irrelevant nodes and propagate upward until a
// relevant (or unfinished, or pinned) node stops the walk.
func (b *Buffer) collect(n *Node) {
	for n != nil && n.Kind != KindRoot {
		if !b.deletable(n) {
			return
		}
		p := n.Parent
		b.unlink(n)
		n = p
	}
}

// unlink splices n (and its — necessarily role-free — subtree) out of the
// tree and updates accounting.
func (b *Buffer) unlink(n *Node) {
	if n.PrevSib != nil {
		n.PrevSib.NextSib = n.NextSib
	} else if n.Parent != nil {
		n.Parent.FirstChild = n.NextSib
	}
	if n.NextSib != nil {
		n.NextSib.PrevSib = n.PrevSib
	} else if n.Parent != nil {
		n.Parent.LastChild = n.PrevSib
	}
	b.dropSubtree(n)
}

// dropSubtree accounts for a spliced-out subtree and returns its nodes to
// the arena. The subtree is necessarily role-free, pin-free, and finished
// (the deletable conditions), so nothing can reference its nodes again.
func (b *Buffer) dropSubtree(n *Node) {
	n.unlinked = true
	b.stats.LiveNodes--
	b.stats.NodesDeleted++
	b.stats.LiveBytes -= nodeBaseBytes + int64(len(n.Text)) + int64(len(n.roles))*roleEntryBytes
	for c := n.FirstChild; c != nil; {
		next := c.NextSib
		b.dropSubtree(c)
		c = next
	}
	b.arena.put(n)
}

// sweep prunes a subtree after an aggregate role was removed from its root:
// descendants kept alive only by the aggregate cover are reclaimed
// (post-order), mirroring what per-node dos roles would have achieved
// (Section 6, "Aggregate Roles"). Subtrees covered by a remaining aggregate
// role are skipped.
func (b *Buffer) sweep(n *Node) {
	b.stats.GCSweeps++
	c := n.FirstChild
	for c != nil {
		next := c.NextSib
		b.sweepWalk(c)
		c = next
	}
}

func (b *Buffer) sweepWalk(m *Node) {
	if m.aggCount > 0 {
		// Still covered by its own aggregate role: keep whole branch.
		return
	}
	c := m.FirstChild
	for c != nil {
		next := c.NextSib
		b.sweepWalk(c)
		c = next
	}
	if b.deletable(m) {
		b.unlink(m)
	}
}

// Dump renders the current buffer contents with roles, matching the
// notation of the paper's Figure 2 (e.g. "book{r3,r5,r6}"). Unfinished
// nodes are marked with an asterisk.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n.Kind != KindRoot {
			for i := 0; i < depth; i++ {
				sb.WriteString("  ")
			}
			switch n.Kind {
			case KindText:
				fmt.Fprintf(&sb, "%q", n.Text)
			default:
				sb.WriteString(b.syms.Name(n.Sym))
			}
			if n.selfTotal > 0 {
				sb.WriteString(n.RolesString())
			}
			if !n.finished {
				sb.WriteByte('*')
			}
			sb.WriteByte('\n')
		}
		for c := n.FirstChild; c != nil; c = c.NextSib {
			walk(c, depth+1)
		}
	}
	walk(b.root, -1)
	return sb.String()
}

// CheckResidue verifies that after a completed GCX evaluation nothing
// reclaimable remains buffered: every surviving node must be unfinished
// (the run stopped before its closing tag) or have an unfinished
// descendant keeping it linked. Finished, role-free, uncovered residue
// indicates a garbage collection gap.
func (b *Buffer) CheckResidue() error {
	var unfinishedBelow func(n *Node) bool
	unfinishedBelow = func(n *Node) bool {
		if !n.finished {
			return true
		}
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if unfinishedBelow(c) {
				return true
			}
		}
		return false
	}
	var check func(n *Node) error
	check = func(n *Node) error {
		for c := n.FirstChild; c != nil; c = c.NextSib {
			if c.finished && c.subTotal == 0 && !unfinishedBelow(c) {
				return fmt.Errorf("buffer: reclaimable residue %s after evaluation", b.describe(c))
			}
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(b.root)
}

// CheckBalance verifies that every role's assignments equal its removals
// and that the buffer holds no stray content below the root. It returns a
// descriptive error naming the first violated invariant. Intended for
// test and debug use after a completed query run (Section 3's safety
// requirements (1) and (2)).
func (b *Buffer) CheckBalance() error {
	for r := 1; r < len(b.assigned); r++ {
		if b.assigned[r] != b.removed[r] {
			return fmt.Errorf("buffer: role r%d assigned %d times but removed %d times", r, b.assigned[r], b.removed[r])
		}
	}
	if b.root.subTotal != 0 {
		return fmt.Errorf("buffer: %d role instances remain after evaluation", b.root.subTotal)
	}
	return nil
}
