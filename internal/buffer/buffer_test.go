package buffer

import (
	"strings"
	"testing"

	"gcx/internal/xmlstream"
	"gcx/internal/xqast"
)

// build constructs a buffer with the given aggregate flags (1-based role
// IDs).
func build(aggregate ...bool) (*Buffer, *xmlstream.SymTab) {
	syms := xmlstream.NewSymTab()
	return New(syms, len(aggregate), append([]bool{false}, aggregate...)), syms
}

func el(b *Buffer, syms *xmlstream.SymTab, parent *Node, name string) *Node {
	return b.AppendElement(parent, syms.Intern(name))
}

func step(axis xqast.Axis, test xqast.NodeTest, first bool) xqast.Step {
	return xqast.Step{Axis: axis, Test: test, First: first}
}

func TestAppendAndLinks(t *testing.T) {
	b, syms := build(false)
	bib := el(b, syms, b.Root(), "bib")
	book1 := el(b, syms, bib, "book")
	book2 := el(b, syms, bib, "book")
	txt := b.AppendText(book1, "hello")

	if bib.FirstChild != book1 || bib.LastChild != book2 {
		t.Fatal("child links wrong")
	}
	if book1.NextSib != book2 || book2.PrevSib != book1 {
		t.Fatal("sibling links wrong")
	}
	if txt.Parent != book1 || !txt.Finished() {
		t.Fatal("text node wrong")
	}
	if got := b.Stats().LiveNodes; got != 5 { // root + 4
		t.Fatalf("LiveNodes = %d, want 5", got)
	}
}

func TestRoleMultiset(t *testing.T) {
	b, syms := build(false, false)
	n := el(b, syms, b.Root(), "a")
	b.AddRole(n, 1, 1)
	b.AddRole(n, 2, 2)
	b.AddRole(n, 1, 1)
	if n.RoleCount(1) != 2 || n.RoleCount(2) != 2 {
		t.Fatalf("multiset: %s", n.RolesString())
	}
	if n.RolesString() != "{r1,r1,r2,r2}" {
		t.Fatalf("roles string: %s", n.RolesString())
	}
	if n.SubtreeRoles() != 4 || b.Root().SubtreeRoles() != 4 {
		t.Fatal("subtree accounting wrong")
	}
}

func TestUndefinedRemoval(t *testing.T) {
	b, syms := build(false)
	n := el(b, syms, b.Root(), "a")
	b.Finish(n)
	// n is pruned at finish (roleless); rebuild.
	n = el(b, syms, b.Root(), "a")
	b.AddRole(n, 1, 1)
	if err := b.SignOff(n, nil, 1); err != nil {
		t.Fatalf("first removal: %v", err)
	}
	n2 := el(b, syms, b.Root(), "a")
	if err := b.SignOff(n2, nil, 1); err == nil {
		t.Fatal("second removal must be undefined (Section 2 remρ)")
	}
}

// TestLocalizedGCUpwardPropagation reproduces Figure 10's bottom-up walk:
// removing the last role of a leaf deletes it and then its now-irrelevant
// ancestors, stopping at the first relevant one.
func TestLocalizedGCUpwardPropagation(t *testing.T) {
	b, syms := build(false, false)
	bib := el(b, syms, b.Root(), "bib")
	book := el(b, syms, bib, "book")
	title := el(b, syms, book, "title")
	b.AddRole(bib, 1, 1)   // keeps bib alive
	b.AddRole(title, 2, 1) // keeps book+title alive
	for _, n := range []*Node{title, book, bib} {
		b.Finish(n)
	}

	if err := b.SignOff(title, nil, 2); err != nil {
		t.Fatal(err)
	}
	if !title.Unlinked() || !book.Unlinked() {
		t.Fatal("title and book must be reclaimed bottom-up")
	}
	if bib.Unlinked() {
		t.Fatal("bib still carries a role and must survive")
	}
	if b.Stats().LiveNodes != 2 { // root + bib
		t.Fatalf("LiveNodes = %d, want 2", b.Stats().LiveNodes)
	}
}

// TestUnfinishedNodesDeferred: the paper marks unfinished nodes deleted and
// purges them when the closing tag arrives.
func TestUnfinishedNodesDeferred(t *testing.T) {
	b, syms := build(false)
	a := el(b, syms, b.Root(), "a")
	b.AddRole(a, 1, 1)
	// a is still unfinished when the role disappears.
	if err := b.SignOff(a, nil, 1); err != nil {
		t.Fatal(err)
	}
	if a.Unlinked() {
		t.Fatal("unfinished node must not be reclaimed yet")
	}
	b.Finish(a)
	if !a.Unlinked() {
		t.Fatal("node must be purged when its closing tag is read")
	}
}

// TestPinnedNodesDeferred: evaluator cursors get the same treatment.
func TestPinnedNodesDeferred(t *testing.T) {
	b, syms := build(false)
	a := el(b, syms, b.Root(), "a")
	b.AddRole(a, 1, 1)
	b.Finish(a)
	b.Pin(a)
	if err := b.SignOff(a, nil, 1); err != nil {
		t.Fatal(err)
	}
	if a.Unlinked() {
		t.Fatal("pinned node must not be reclaimed")
	}
	b.Unpin(a)
	if !a.Unlinked() {
		t.Fatal("node must be reclaimed at unpin")
	}
}

// TestPinnedDescendantBlocksAncestorDeletion: a pin anywhere in the subtree
// keeps the whole chain.
func TestPinnedDescendantBlocksAncestorDeletion(t *testing.T) {
	b, syms := build(false)
	a := el(b, syms, b.Root(), "a")
	b.AddRole(a, 1, 1)
	c := el(b, syms, a, "c")
	b.Pin(c)
	b.Finish(c)
	b.Finish(a)
	if err := b.SignOff(a, nil, 1); err != nil {
		t.Fatal(err)
	}
	if a.Unlinked() || c.Unlinked() {
		t.Fatal("pinned subtree must survive")
	}
	b.Unpin(c)
	if !c.Unlinked() || !a.Unlinked() {
		t.Fatal("unpin must trigger deferred collection up the chain")
	}
}

// TestClosePrune: finished, role-free, uncovered nodes are reclaimed when
// their closing tag is read (skeleton nodes can never become relevant
// afterwards).
func TestClosePrune(t *testing.T) {
	b, syms := build(false)
	a := el(b, syms, b.Root(), "a")
	x := el(b, syms, a, "x") // skeleton node, never gets roles
	b.AddRole(a, 1, 1)
	b.Finish(x)
	if !x.Unlinked() {
		t.Fatal("roleless finished leaf must be pruned at close")
	}
	if a.Unlinked() {
		t.Fatal("parent with roles must survive")
	}
}

// TestAggregateCoverPreventsPrune: descendants of a node carrying an
// aggregate role are covered and must survive even without own roles.
func TestAggregateCoverPreventsPrune(t *testing.T) {
	b, syms := build(true) // r1 aggregate
	book := el(b, syms, b.Root(), "book")
	b.AddRole(book, 1, 1)
	author := el(b, syms, book, "author")
	b.Finish(author)
	if author.Unlinked() {
		t.Fatal("covered node must not be pruned at close")
	}
	b.Finish(book)

	// Removing the aggregate role sweeps the subtree.
	if err := b.SignOff(book, nil, 1); err != nil {
		t.Fatal(err)
	}
	if !author.Unlinked() || !book.Unlinked() {
		t.Fatal("aggregate removal must reclaim the whole subtree")
	}
}

// TestAggregateSweepKeepsRoledDescendants: the sweep must not touch
// descendants that carry own roles (e.g. the title holding r7 while the
// book's r5 disappears, as in the paper's step 6/7 of Figure 2).
func TestAggregateSweepKeepsRoledDescendants(t *testing.T) {
	b, syms := build(true, false) // r1 aggregate, r2 plain
	book := el(b, syms, b.Root(), "book")
	title := el(b, syms, book, "title")
	author := el(b, syms, book, "author")
	b.AddRole(book, 1, 1)
	b.AddRole(title, 2, 1)
	for _, n := range []*Node{title, author, book} {
		b.Finish(n)
	}

	if err := b.SignOff(book, nil, 1); err != nil {
		t.Fatal(err)
	}
	if author.Unlinked() == false {
		t.Fatal("author (roleless) must be swept")
	}
	if title.Unlinked() {
		t.Fatal("title (role r2) must survive the sweep")
	}
	if book.Unlinked() {
		t.Fatal("book must survive while title holds a role")
	}

	if err := b.SignOff(title, nil, 2); err != nil {
		t.Fatal(err)
	}
	if !title.Unlinked() || !book.Unlinked() {
		t.Fatal("final signoff must empty the buffer")
	}
	if err := b.CheckBalance(); err != nil {
		t.Fatal(err)
	}
}

// TestNestedAggregateSkipsCoveredBranch: sweeping must not descend into a
// branch covered by its own aggregate role.
func TestNestedAggregateSkipsCoveredBranch(t *testing.T) {
	b, syms := build(true, true)
	outer := el(b, syms, b.Root(), "outer")
	inner := el(b, syms, outer, "inner")
	leaf := el(b, syms, inner, "leaf")
	b.AddRole(outer, 1, 1)
	b.AddRole(inner, 2, 1)
	for _, n := range []*Node{leaf, inner, outer} {
		b.Finish(n)
	}
	if err := b.SignOff(outer, nil, 1); err != nil {
		t.Fatal(err)
	}
	if leaf.Unlinked() || inner.Unlinked() {
		t.Fatal("branch covered by inner aggregate must survive outer sweep")
	}
	if err := b.SignOff(inner, nil, 2); err != nil {
		t.Fatal(err)
	}
	if !leaf.Unlinked() || !inner.Unlinked() || !outer.Unlinked() {
		t.Fatal("inner signoff must reclaim everything")
	}
}

// TestResolveDerivationMultiplicity reproduces Figure 4(c): //a//b over
// /a/a/b reaches the deep b twice, so the role is removed twice.
func TestResolveDerivationMultiplicity(t *testing.T) {
	b, syms := build(false)
	a1 := el(b, syms, b.Root(), "a")
	a2 := el(b, syms, a1, "a")
	deep := el(b, syms, a2, "b")
	shallow := el(b, syms, a1, "b")
	_ = shallow

	// Assign role r1 twice to deep (two derivations) and once to shallow,
	// mimicking the projector's multiset assignment in Figure 4(c).
	b.AddRole(deep, 1, 2)
	b.AddRole(shallow, 1, 1)
	for _, n := range []*Node{deep, a2, shallow, a1} {
		b.Finish(n)
	}

	steps := []xqast.Step{
		step(xqast.Descendant, xqast.NameTest("a"), false),
		step(xqast.Descendant, xqast.NameTest("b"), false),
	}
	if err := b.SignOff(b.Root(), steps, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckBalance(); err != nil {
		t.Fatalf("derivation-counting removal must balance: %v", err)
	}
	if b.Stats().LiveNodes != 1 {
		t.Fatalf("LiveNodes = %d, want 1 (root only)\n%s", b.Stats().LiveNodes, b.Dump())
	}
}

// TestResolveFirstWitness: [1] steps select only the first match per
// context, as the projector does when buffering witnesses.
func TestResolveFirstWitness(t *testing.T) {
	b, syms := build(false)
	book := el(b, syms, b.Root(), "book")
	p1 := el(b, syms, book, "price")
	b.AddRole(p1, 1, 1)
	// Second price was never buffered by projection ([1] suppression), but
	// even if it were, [1] resolution must pick only the first.
	p2 := el(b, syms, book, "price")
	for _, n := range []*Node{p1, p2, book} {
		b.Finish(n)
	}

	got := b.Resolve(book, []xqast.Step{step(xqast.Child, xqast.NameTest("price"), true)})
	if len(got) != 1 || got[0] != p1 {
		t.Fatalf("Resolve([1]) = %v, want [p1]", got)
	}
	if err := b.SignOff(book, []xqast.Step{step(xqast.Child, xqast.NameTest("price"), true)}, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckBalance(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveDosIncludesSelfAndText(t *testing.T) {
	b, syms := build(false)
	x := el(b, syms, b.Root(), "x")
	c := el(b, syms, x, "c")
	txt := b.AppendText(c, "v")

	got := b.Resolve(x, []xqast.Step{step(xqast.DescendantOrSelf, xqast.NodeKindTest(), false)})
	if len(got) != 3 || got[0] != x || got[1] != c || got[2] != txt {
		t.Fatalf("dos::node() = %d nodes, want self+c+text", len(got))
	}
}

func TestStatsPeaks(t *testing.T) {
	b, syms := build(false)
	a := el(b, syms, b.Root(), "a")
	kids := make([]*Node, 0, 10)
	for i := 0; i < 10; i++ {
		k := el(b, syms, a, "k")
		b.AddRole(k, 1, 1)
		b.Finish(k)
		kids = append(kids, k)
	}
	peak := b.Stats().PeakNodes
	if peak != 12 { // root + a + 10 kids
		t.Fatalf("PeakNodes = %d, want 12", peak)
	}
	for _, k := range kids {
		if err := b.SignOff(k, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.PeakNodes != 12 {
		t.Fatalf("peak must be sticky, got %d", st.PeakNodes)
	}
	// a itself is unfinished and survives; kids are gone.
	if st.LiveNodes != 2 {
		t.Fatalf("LiveNodes = %d, want 2\n%s", st.LiveNodes, b.Dump())
	}
	if st.LiveBytes <= 0 || st.PeakBytes < st.LiveBytes {
		t.Fatalf("byte accounting inconsistent: %+v", st)
	}
}

func TestDumpFormat(t *testing.T) {
	b, syms := build(false, false)
	bib := el(b, syms, b.Root(), "bib")
	book := el(b, syms, bib, "book")
	b.AddRole(bib, 1, 1)
	b.AddRole(book, 2, 2)
	b.Finish(book)
	dump := b.Dump()
	if !strings.Contains(dump, "bib{r1}*") {
		t.Fatalf("dump missing unfinished bib with role:\n%s", dump)
	}
	if !strings.Contains(dump, "book{r2,r2}") {
		t.Fatalf("dump missing book with role multiset:\n%s", dump)
	}
}

// cancellerSpy records cancellation calls.
type cancellerSpy struct {
	calls []xqast.Role
}

func (c *cancellerSpy) CancelRole(binding *Node, role xqast.Role) {
	c.calls = append(c.calls, role)
}

func TestSignOffCancellationOnlyWhenUnfinished(t *testing.T) {
	b, syms := build(false)
	spy := &cancellerSpy{}
	b.SetCanceller(spy)

	open := el(b, syms, b.Root(), "open")
	b.AddRole(open, 1, 1)
	if err := b.SignOff(open, nil, 1); err != nil {
		t.Fatal(err)
	}
	if len(spy.calls) != 1 || spy.calls[0] != 1 {
		t.Fatalf("unfinished binding must trigger cancellation: %v", spy.calls)
	}

	b.Finish(open)
	closed := el(b, syms, b.Root(), "closed")
	b.AddRole(closed, 1, 1)
	b.Finish(closed)
	if err := b.SignOff(closed, nil, 1); err != nil {
		t.Fatal(err)
	}
	if len(spy.calls) != 1 {
		t.Fatalf("finished binding must not trigger cancellation: %v", spy.calls)
	}
}

func TestCheckBalanceDetectsLeak(t *testing.T) {
	b, syms := build(false)
	n := el(b, syms, b.Root(), "a")
	b.AddRole(n, 1, 1)
	if err := b.CheckBalance(); err == nil {
		t.Fatal("CheckBalance must detect unremoved roles")
	}
}
