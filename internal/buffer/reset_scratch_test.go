package buffer

import (
	"testing"

	"gcx/internal/xqast"
)

// An idle pooled buffer must not pin freed arena nodes through the
// signOff resolution scratch: Reset clears resA/resB down to their
// backing arrays.
func TestResetClearsResolutionScratch(t *testing.T) {
	b, syms := build(false)
	bib := el(b, syms, b.Root(), "bib")
	el(b, syms, bib, "book")
	el(b, syms, bib, "book")

	steps := []xqast.Step{step(xqast.Child, xqast.NameTest("book"), false)}
	if got := len(b.Resolve(bib, steps)); got != 2 {
		t.Fatalf("resolution sanity: got %d targets, want 2", got)
	}
	if cap(b.resA) == 0 && cap(b.resB) == 0 {
		t.Fatal("expected resolution scratch to have grown")
	}

	b.Reset()
	for i, tg := range b.resA[:cap(b.resA)] {
		if tg.node != nil || tg.mult != 0 {
			t.Errorf("resA[%d] still references a node after Reset: %+v", i, tg)
		}
	}
	for i, tg := range b.resB[:cap(b.resB)] {
		if tg.node != nil || tg.mult != 0 {
			t.Errorf("resB[%d] still references a node after Reset: %+v", i, tg)
		}
	}
}
