package gcx

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"gcx/internal/queries"
	"gcx/internal/xmark"
)

// TestBufferPeakOrdering is the paper's memory claim as a regression
// test (the Fig. 13/14 shape): for every catalog query and document
// size, the buffer high watermark must respect
//
//	peak(GCX) ≤ peak(StaticOnly) ≤ peak(FullBuffer)
//
// — dynamic garbage collection can only shrink what projection buffered,
// and projection can only shrink what full buffering would keep. On the
// join-free queries GCX must additionally beat FullBuffer STRICTLY:
// streaming them in constant memory is the whole point of the technique.
// Any future performance PR that silently breaks these inequalities
// fails `go test ./...`.
func TestBufferPeakOrdering(t *testing.T) {
	for _, size := range orderingDocSizes {
		doc := orderingDoc(t, size)
		t.Run(fmt.Sprintf("%dKB", size>>10), func(t *testing.T) {
			for _, q := range queries.AllIncludingExtended() {
				t.Run(q.Name, func(t *testing.T) {
					peaks := map[Strategy]Stats{}
					for _, strat := range []Strategy{GCX, StaticOnly, FullBuffer} {
						eng, err := Compile(q.Text, WithStrategy(strat))
						if err != nil {
							t.Fatal(err)
						}
						st, err := eng.Run(bytes.NewReader(doc), io.Discard)
						if err != nil {
							t.Fatalf("%v: %v", strat, err)
						}
						peaks[strat] = st
					}
					gcxSt, static, full := peaks[GCX], peaks[StaticOnly], peaks[FullBuffer]
					if gcxSt.PeakBufferNodes > static.PeakBufferNodes {
						t.Errorf("peak nodes: GCX %d > StaticOnly %d — garbage collection grew the buffer",
							gcxSt.PeakBufferNodes, static.PeakBufferNodes)
					}
					if static.PeakBufferNodes > full.PeakBufferNodes {
						t.Errorf("peak nodes: StaticOnly %d > FullBuffer %d — projection buffered more than everything",
							static.PeakBufferNodes, full.PeakBufferNodes)
					}
					if gcxSt.PeakBufferBytes > static.PeakBufferBytes {
						t.Errorf("peak bytes: GCX %d > StaticOnly %d",
							gcxSt.PeakBufferBytes, static.PeakBufferBytes)
					}
					if static.PeakBufferBytes > full.PeakBufferBytes {
						t.Errorf("peak bytes: StaticOnly %d > FullBuffer %d",
							static.PeakBufferBytes, full.PeakBufferBytes)
					}
					if joinFree(q.Name) && gcxSt.PeakBufferNodes >= full.PeakBufferNodes {
						t.Errorf("join-free %s: GCX peak %d nodes must STRICTLY beat FullBuffer %d",
							q.Name, gcxSt.PeakBufferNodes, full.PeakBufferNodes)
					}
					// All three strategies agree on the result, so their
					// output sizes must match (cheap cross-check that the
					// comparison compared the same work).
					if gcxSt.OutputBytes != static.OutputBytes || gcxSt.OutputBytes != full.OutputBytes {
						t.Errorf("output bytes disagree: GCX %d, StaticOnly %d, FullBuffer %d",
							gcxSt.OutputBytes, static.OutputBytes, full.OutputBytes)
					}
				})
			}
		})
	}
}

// joinFree reports whether the catalog query streams without a value
// join. Q8 is the catalog's join (people ⋈ closed_auctions): its inner
// region must stay buffered to the end, so GCX is not required to beat
// FullBuffer by a margin there.
func joinFree(name string) bool { return name != "Q8" }

// earliestSink records where the input stream stood when the engine's
// first-result flush pushed bytes through (consumed reads *inputPos), and
// collects the output for byte comparison.
type earliestSink struct {
	buf             bytes.Buffer
	inputPos        *int64
	flushes         int
	firstFlushBytes int64 // output bytes delivered by the first flush
	firstFlushInput int64 // input bytes consumed at the first flush
}

func (s *earliestSink) Write(p []byte) (int, error) { return s.buf.Write(p) }

func (s *earliestSink) FlushResult() {
	if s.flushes == 0 {
		s.firstFlushBytes = int64(s.buf.Len())
		s.firstFlushInput = *s.inputPos
	}
	s.flushes++
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// TestEarliestEmissionInvariants pins the earliest-answering contract on
// every catalog query under every strategy:
//
//  1. A run with output has a TTFR stamp, and it never exceeds the
//     run's wall time.
//  2. The first-result flush fires, delivers bytes to the destination,
//     and does so BEFORE the input stream is exhausted — output begins
//     while input is still arriving, not after the scan.
//  3. Emitting early changes nothing else: deterministic stats (peaks,
//     tokens, output size) and the result bytes are identical to a run
//     into a plain sink.
func TestEarliestEmissionInvariants(t *testing.T) {
	doc := orderingDoc(t, orderingDocSizes[2]) // several tokenizer windows
	for _, q := range queries.AllIncludingExtended() {
		t.Run(q.Name, func(t *testing.T) {
			for _, strat := range []Strategy{GCX, StaticOnly, FullBuffer} {
				eng, err := Compile(q.Text, WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				var plain bytes.Buffer
				stPlain, err := eng.Run(bytes.NewReader(doc), &plain)
				if err != nil {
					t.Fatalf("%v plain: %v", strat, err)
				}
				cr := &countingReader{r: bytes.NewReader(doc)}
				sink := &earliestSink{inputPos: &cr.n}
				stEager, err := eng.Run(cr, sink)
				if err != nil {
					t.Fatalf("%v eager: %v", strat, err)
				}

				if stEager.OutputBytes > 0 && stEager.TimeToFirstResultNanos <= 0 {
					t.Errorf("%v: output %d bytes but no TTFR stamp", strat, stEager.OutputBytes)
				}
				if stEager.TimeToFirstResultNanos > stEager.EvalWallNanos {
					t.Errorf("%v: TTFR %d later than the run's end %d",
						strat, stEager.TimeToFirstResultNanos, stEager.EvalWallNanos)
				}
				if sink.flushes == 0 {
					t.Errorf("%v: first-result flush never reached the destination", strat)
				}
				if sink.firstFlushBytes == 0 {
					t.Errorf("%v: first-result flush delivered nothing", strat)
				}
				if sink.firstFlushInput >= int64(len(doc)) {
					t.Errorf("%v: first result left the engine only after the whole %d-byte input (consumed %d)",
						strat, len(doc), sink.firstFlushInput)
				}
				if stEager.Deterministic() != stPlain.Deterministic() {
					t.Errorf("%v: eager emission changed run stats:\neager: %+v\nplain: %+v",
						strat, stEager.Deterministic(), stPlain.Deterministic())
				}
				if !bytes.Equal(sink.buf.Bytes(), plain.Bytes()) {
					t.Errorf("%v: eager emission changed output bytes", strat)
				}
			}
		})
	}
}

// orderingDocSizes are the three generated document sizes of the sweep,
// chosen to keep `go test ./...` fast while spanning a 8x size range.
var orderingDocSizes = []int64{64 << 10, 192 << 10, 512 << 10}

var orderingDocs struct {
	mu   sync.Mutex
	bySz map[int64][]byte
}

func orderingDoc(t *testing.T, size int64) []byte {
	t.Helper()
	orderingDocs.mu.Lock()
	defer orderingDocs.mu.Unlock()
	if orderingDocs.bySz == nil {
		orderingDocs.bySz = map[int64][]byte{}
	}
	if d, ok := orderingDocs.bySz[size]; ok {
		return d
	}
	var buf bytes.Buffer
	if _, err := xmark.Generate(&buf, xmark.Config{Factor: xmark.FactorForSize(size), Seed: 42}); err != nil {
		t.Fatal(err)
	}
	orderingDocs.bySz[size] = buf.Bytes()
	return buf.Bytes()
}

// TestBufferPeakOrderingBulk extends the memory claim to the bulk
// path: evaluating a corpus (one document per XMark size) across a
// worker pool must keep every per-document peak at its solo value —
// the aggregate memory bound is then workers × the largest single
// document peak, never the corpus sum — and under GCX that bound must
// stay STRICTLY below FullBuffer's on the join-free queries, mirroring
// TestBufferPeakOrdering.
func TestBufferPeakOrderingBulk(t *testing.T) {
	var docs [][]byte
	var stream bytes.Buffer
	for _, size := range orderingDocSizes {
		d := orderingDoc(t, size)
		docs = append(docs, d)
		stream.Write(d)
		stream.WriteByte('\n')
	}
	const workers = 4
	for _, q := range queries.AllIncludingExtended() {
		t.Run(q.Name, func(t *testing.T) {
			type strat struct {
				soloMaxNodes, soloMaxBytes int64 // max per-doc solo peak
				bulkMaxNodes, bulkMaxBytes int64 // max per-doc bulk peak
			}
			peaks := map[Strategy]*strat{}
			for _, s := range []Strategy{GCX, FullBuffer} {
				eng, err := Compile(q.Text, WithStrategy(s))
				if err != nil {
					t.Fatal(err)
				}
				p := &strat{}
				peaks[s] = p
				for i, d := range docs {
					st, err := eng.Run(bytes.NewReader(d), io.Discard)
					if err != nil {
						t.Fatalf("solo doc %d: %v", i, err)
					}
					p.soloMaxNodes = max(p.soloMaxNodes, st.PeakBufferNodes)
					p.soloMaxBytes = max(p.soloMaxBytes, st.PeakBufferBytes)
				}
				bs, err := eng.Bulk(CorpusConcat(bytes.NewReader(stream.Bytes())), BulkOptions{Workers: workers},
					func(d BulkDoc) error {
						if d.Err != nil {
							t.Errorf("bulk doc %d: %v", d.Index, d.Err)
						}
						return nil
					})
				if err != nil {
					t.Fatal(err)
				}
				p.bulkMaxNodes = bs.Aggregate.PeakBufferNodes
				p.bulkMaxBytes = bs.Aggregate.PeakBufferBytes
				// No document's buffer may grow beyond its solo peak
				// under concurrency: the aggregate bound
				// workers × max-per-doc-solo-peak follows, because at
				// most `workers` documents evaluate at once.
				if p.bulkMaxNodes > p.soloMaxNodes || p.bulkMaxBytes > p.soloMaxBytes {
					t.Errorf("%v: bulk per-doc peak %d nodes / %d bytes exceeds solo %d / %d",
						s, p.bulkMaxNodes, p.bulkMaxBytes, p.soloMaxNodes, p.soloMaxBytes)
				}
				if bs.PeakInFlight > workers {
					t.Errorf("%v: %d documents in flight with %d workers", s, bs.PeakInFlight, workers)
				}
			}
			if joinFree(q.Name) {
				g, f := peaks[GCX], peaks[FullBuffer]
				if workers*g.bulkMaxNodes >= f.bulkMaxNodes {
					t.Errorf("join-free %s: GCX bulk bound %d×%d nodes must stay strictly below FullBuffer's peak %d",
						q.Name, workers, g.bulkMaxNodes, f.bulkMaxNodes)
				}
			}
		})
	}
}

// TestBufferPeakOrderingWorkload extends the ordering claim to the
// shared-stream artifact: the merged pass under GCX must not exceed the
// merged pass under StaticOnly, which must not exceed FullBuffer.
func TestBufferPeakOrderingWorkload(t *testing.T) {
	doc := orderingDoc(t, orderingDocSizes[1])
	var texts []string
	for _, q := range queries.All() {
		texts = append(texts, q.Text)
	}
	peaks := map[Strategy]WorkloadStats{}
	for _, strat := range []Strategy{GCX, StaticOnly, FullBuffer} {
		w, err := CompileWorkload(texts, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]io.Writer, w.Len())
		for i := range outs {
			outs[i] = io.Discard
		}
		st, err := w.Run(bytes.NewReader(doc), outs)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		peaks[strat] = st
	}
	g, s, f := peaks[GCX].Aggregate, peaks[StaticOnly].Aggregate, peaks[FullBuffer].Aggregate
	if g.PeakBufferNodes > s.PeakBufferNodes || s.PeakBufferNodes > f.PeakBufferNodes {
		t.Errorf("workload peak nodes ordering violated: GCX %d, StaticOnly %d, FullBuffer %d",
			g.PeakBufferNodes, s.PeakBufferNodes, f.PeakBufferNodes)
	}
	if g.PeakBufferBytes > s.PeakBufferBytes || s.PeakBufferBytes > f.PeakBufferBytes {
		t.Errorf("workload peak bytes ordering violated: GCX %d, StaticOnly %d, FullBuffer %d",
			g.PeakBufferBytes, s.PeakBufferBytes, f.PeakBufferBytes)
	}
}
