//go:build !race

package gcx

const raceEnabled = false
