package gcx

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"gcx/internal/xmlstream"
)

// This file pins the certainty edges of earliest answering with
// differential tests: documents crafted so that the moment a condition
// becomes decidable sits exactly on an awkward boundary (last event of
// the document, compile-time refutation, overlapping descendant
// regions). Each case is run across a spread of read-window sizes — so
// every token boundary eventually coincides with a refill boundary —
// and byte-compared against a solo run over the Reference-canonicalized
// document. Emitting at the earliest certain moment must never change a
// single output byte, no matter how the input is sliced.

// earliestWindows are the read chunk sizes the differential runs cycle
// through: pathological (1, 2, 7), around small powers of two, the
// tokenizer's own window, and 0 meaning "whole document at once".
var earliestWindows = []int{1, 2, 7, 64, 1024, 64 << 10, 0}

// windowReader serves at most k bytes per Read call, forcing the
// tokenizer to refill at positions unrelated to token boundaries.
type windowReader struct {
	data []byte
	k    int
	off  int
}

func (r *windowReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := len(r.data) - r.off
	if r.k > 0 && n > r.k {
		n = r.k
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[r.off:r.off+n])
	r.off += n
	return n, nil
}

// referenceCanonical re-serializes doc through the frozen Reference
// scanner: the token stream the conformance suite treats as ground truth,
// written back out by the Writer. Running the engine over this
// canonical form is the "Reference-backed solo run" every windowed run
// is compared against.
func referenceCanonical(t *testing.T, doc []byte) []byte {
	t.Helper()
	ref := xmlstream.NewReference(bytes.NewReader(doc), xmlstream.DefaultOptions())
	var out bytes.Buffer
	w := xmlstream.NewWriter(&out)
	for {
		tok, err := ref.Next()
		if err != nil {
			t.Fatalf("reference scan: %v", err)
		}
		if tok.Kind == xmlstream.EOF {
			break
		}
		w.WriteToken(tok)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("reference serialize: %v", err)
	}
	return out.Bytes()
}

// runWindowed executes eng over doc served k bytes per read, through an
// eager first-result sink, and returns the output bytes and stats.
func runWindowed(t *testing.T, eng *Engine, doc []byte, k int) ([]byte, Stats, *earliestSink) {
	t.Helper()
	cr := &countingReader{r: &windowReader{data: doc, k: k}}
	sink := &earliestSink{inputPos: &cr.n}
	st, err := eng.Run(cr, sink)
	if err != nil {
		t.Fatalf("window %d: %v", k, err)
	}
	return sink.buf.Bytes(), st, sink
}

// differentialEarliest asserts that eng produces byte-identical output
// and deterministic stats over doc at every window size, and that the
// windowed outputs match a solo run over the Reference-canonicalized
// document. Returns the agreed output.
func differentialEarliest(t *testing.T, eng *Engine, doc []byte) []byte {
	t.Helper()
	canon := referenceCanonical(t, doc)
	wantOut, wantSt, _ := runWindowed(t, eng, canon, 0)
	wantDet := wantSt.Deterministic()
	for _, k := range earliestWindows {
		out, st, sink := runWindowed(t, eng, doc, k)
		if !bytes.Equal(out, wantOut) {
			t.Fatalf("window %d: output diverged from Reference-backed solo run:\n got %q\nwant %q", k, out, wantOut)
		}
		if len(out) > 0 && sink.flushes == 0 {
			t.Fatalf("window %d: output produced but first-result flush never fired", k)
		}
		if det := st.Deterministic(); det != wantDet {
			t.Fatalf("window %d: stats diverged:\n got %+v\nwant %+v", k, det, wantDet)
		}
	}
	return wantOut
}

// TestEarliestWitnessIsLastEvent drives the existence decision to the
// final events of the document: the witness (or the proof of its
// absence, the closing root tag) arrives last, after a long run of
// irrelevant siblings. Whatever the engine does to answer early must
// degrade gracefully to "answer at the very end" without corrupting or
// duplicating output, at every refill alignment.
func TestEarliestWitnessIsLastEvent(t *testing.T) {
	const query = `<r>{ for $x in /root return if (exists($x/flag)) then <y/> else <n/> }</r>`
	eng, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("<pad>xxxxxxxx</pad>", 3000)

	// Witness is the last child: certainty arrives with the final start tag.
	late := []byte("<root>" + pad + "<flag></flag></root>")
	if got := differentialEarliest(t, eng, late); string(got) != "<r><y></y></r>" {
		t.Fatalf("late witness: got %q", got)
	}
	// No witness at all: only </root> — the last event — decides the else
	// branch.
	never := []byte("<root>" + pad + "</root>")
	if got := differentialEarliest(t, eng, never); string(got) != "<r><n></n></r>" {
		t.Fatalf("absent witness: got %q", got)
	}
}

// TestEarliestNeverMatchSchemaStopsPulling pins the compile-time edge:
// when the DTD proves the tested child can never occur, the engine must
// emit the refuted branch without waiting for a witness that cannot come
// — and must stop pulling input once the output is complete. The output
// bytes must be identical to the schema-less run at every window size;
// only WHEN they are produced (and how many tokens are read) may differ.
func TestEarliestNeverMatchSchemaStopsPulling(t *testing.T) {
	const docDTD = `
		<!ELEMENT root (item*)>
		<!ELEMENT item (#PCDATA)>
	`
	const query = `<r>{ for $x in /root return if (exists($x/ghost)) then <y/> else <n/> }</r>`
	var doc bytes.Buffer
	doc.WriteString("<root>")
	for i := 0; i < 4000; i++ {
		doc.WriteString("<item>v</item>")
	}
	doc.WriteString("</root>")

	plain, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := Compile(query, WithDTD(docDTD))
	if err != nil {
		t.Fatal(err)
	}

	plainOut := differentialEarliest(t, plain, doc.Bytes())
	schemaOut := differentialEarliest(t, schema, doc.Bytes())
	if !bytes.Equal(plainOut, schemaOut) {
		t.Fatalf("schema changed output bytes:\n plain %q\nschema %q", plainOut, schemaOut)
	}
	if string(schemaOut) != "<r><n></n></r>" {
		t.Fatalf("refuted exists: got %q", schemaOut)
	}

	// The schema run must not scan the 4000 items waiting for a ghost:
	// the refutation is known before the first item arrives.
	_, plainSt, _ := runWindowed(t, plain, doc.Bytes(), 0)
	_, schemaSt, _ := runWindowed(t, schema, doc.Bytes(), 0)
	if schemaSt.TokensRead*10 > plainSt.TokensRead {
		t.Fatalf("schema run still scanned the document: %d tokens vs %d plain",
			schemaSt.TokensRead, plainSt.TokensRead)
	}
}

// TestEarliestFirstWitnessUnderOverlappingDescendants exercises the
// [position()=1] first-witness cursor (the internal marker exists()
// dependencies carry) where descendant regions overlap: nested <a>
// bindings share their inner <b> descendants, so a single event is the
// first witness for SEVERAL live bindings at once, and a later <b> must
// satisfy one binding without being double-counted for another. The
// cursor may answer as soon as its witness opens; it must still agree
// byte-for-byte with the Reference-backed solo run at every window size.
func TestEarliestFirstWitnessUnderOverlappingDescendants(t *testing.T) {
	const query = `<r>{ for $x in /root//a return if (exists($x//b)) then <y/> else <n/> }</r>`
	eng, err := Compile(query)
	if err != nil {
		t.Fatal(err)
	}

	// One <b>, witness for both overlapping bindings simultaneously.
	shared := []byte(`<root><a><a><b>w</b></a></a></root>`)
	if got := differentialEarliest(t, eng, shared); string(got) != `<r><y></y><y></y></r>` {
		t.Fatalf("shared witness: got %q", got)
	}

	// The outer region's witness lives inside the nested one; a second,
	// later <b> in the outer region must not produce extra answers.
	doc := []byte(`<root><a><c>skip</c><a><b>inner</b></a><b>late</b></a></root>`)
	if got := differentialEarliest(t, eng, doc); string(got) != `<r><y></y><y></y></r>` {
		t.Fatalf("overlapping witnesses: got %q", got)
	}

	// Witness satisfies only the sibling binding: the nested pair has no
	// <b> anywhere, so its answers must flip to the else branch without
	// borrowing the sibling's witness.
	split := []byte(`<root><a><a><c>x</c></a></a><a><b>two</b></a></root>`)
	if got := differentialEarliest(t, eng, split); string(got) != `<r><n></n><n></n><y></y></r>` {
		t.Fatalf("split regions: got %q", got)
	}
}
