package gcx

// Context-aware run variants. The engine's evaluation loop is a
// synchronous pull over the input stream, so cancellation is delivered
// where the engine already handles failure: the stream read. A canceled
// context makes the next read fail with an error matching ErrCanceled
// (and, through it, the context's own Canceled/DeadlineExceeded), and the
// evaluation unwinds exactly like any other input failure — no goroutines
// are abandoned, pooled run states are recycled normally.

import (
	"context"
	"errors"
	"io"
)

// ctxReader surfaces context cancellation (timeout, caller gone) as a
// stream read error, which the engine propagates verbatim.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, &canceledError{cause: err}
	}
	n, err := c.r.Read(p)
	// A Read blocked past the deadline returns normally (or EOF) — the
	// expiry must still win, or a trickling input defeats the timeout.
	if cerr := c.ctx.Err(); cerr != nil && (err == nil || errors.Is(err, io.EOF)) {
		return n, &canceledError{cause: cerr}
	}
	return n, err
}

// guard wraps in with cancellation checks; a context that can never be
// canceled (context.Background, nil) adds no per-read overhead.
func guard(ctx context.Context, in io.Reader) io.Reader {
	if ctx == nil || ctx.Done() == nil {
		return in
	}
	return &ctxReader{ctx: ctx, r: in}
}

// RunContext is Run bounded by a context: when ctx is canceled or its
// deadline expires, the evaluation unwinds promptly and the returned
// error matches ErrCanceled (and the context's own error). A background
// context adds no overhead — Run is RunContext with context.Background().
func (e *Engine) RunContext(ctx context.Context, in io.Reader, out io.Writer) (Stats, error) {
	st, err := e.c.Run(guard(ctx, in), out)
	return convertStats(st), err
}

// RunContext is Workload.Run bounded by a context; see Engine.RunContext.
func (w *Workload) RunContext(ctx context.Context, in io.Reader, outs []io.Writer) (WorkloadStats, error) {
	if len(outs) != w.Len() {
		return WorkloadStats{}, errWriterCount(w.Len(), len(outs))
	}
	st, qs, err := w.c.Run(guard(ctx, in), outs)
	return convertWorkloadStats(st, qs), err
}
