// Command gcxlint is the repo's static invariant checker. It bundles the
// four gcx-specific analyzers and speaks the `go vet -vettool=` unit
// protocol, so the usual invocation is
//
//	go vet -vettool=$(go tool -n gcxlint) ./...
//
// It also runs standalone over GOPATH-style source trees (the analyzers'
// seeded-violation testdata, which go vet cannot see):
//
//	gcxlint -dir internal/lint/resetcheck/testdata/src/resetbad
package main

import (
	"gcx/internal/lint/borrowcheck"
	"gcx/internal/lint/gcxlint"
	"gcx/internal/lint/noalloccheck"
	"gcx/internal/lint/resetcheck"
	"gcx/internal/lint/roleoffsetcheck"
)

func main() {
	gcxlint.Main(
		resetcheck.Analyzer,
		borrowcheck.Analyzer,
		noalloccheck.Analyzer,
		roleoffsetcheck.Analyzer,
	)
}
