package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"gcx/internal/obs"
)

// TestOpsEndToEnd is the ops smoke test: it builds the real gcxd binary,
// boots it on an ephemeral port, and probes every operational endpoint —
// liveness, readiness (including the degraded-registry flip), build
// info, a short CPU profile, and a live /metrics scrape through the
// strict exposition parser.
func TestOpsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the gcxd binary")
	}
	bin := filepath.Join(t.TempDir(), "gcxd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	reg := t.TempDir()
	if err := os.WriteFile(filepath.Join(reg, "q1.xq"), []byte(
		`<hits>{ for $p in /site/people/person return $p/name }</hits>`), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("healthy", func(t *testing.T) {
		base, stop := bootGcxd(t, bin, "-listen", "127.0.0.1:0", "-queries", reg, "-pprof", "-timeout", "30s")
		defer stop()

		expectStatus(t, base+"/healthz", http.StatusOK)
		expectStatus(t, base+"/readyz", http.StatusOK)

		var bi struct {
			GoVersion string `json:"go_version"`
			Module    string `json:"module"`
		}
		getJSON(t, base+"/buildinfo", &bi)
		if bi.GoVersion == "" || bi.Module == "" {
			t.Fatalf("buildinfo incomplete: %+v", bi)
		}

		// Serve one registered query so the scrape shows real traffic.
		doc := []byte(`<site><people><person><name>n</name></person></people></site>`)
		resp, err := http.Post(base+"/query?id=q1", "application/xml", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "<name>") {
			t.Fatalf("query: status %d body %q", resp.StatusCode, body)
		}

		// A one-second CPU profile must come back as a non-empty pprof
		// payload (gzip magic or legacy text — just prove the handler runs).
		profResp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
		if err != nil {
			t.Fatal(err)
		}
		prof, _ := io.ReadAll(profResp.Body)
		profResp.Body.Close()
		if profResp.StatusCode != http.StatusOK || len(prof) == 0 {
			t.Fatalf("pprof profile: status %d, %d bytes", profResp.StatusCode, len(prof))
		}

		mResp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		scrapeData, _ := io.ReadAll(mResp.Body)
		mResp.Body.Close()
		exp, err := obs.ParseExposition(scrapeData)
		if err != nil {
			t.Fatalf("live /metrics violates the exposition format: %v", err)
		}
		ttfr := exp.Family("gcxd_ttfr_seconds")
		if ttfr == nil {
			t.Fatal("live scrape lacks gcxd_ttfr_seconds")
		}
		found := false
		for _, s := range ttfr.Samples {
			if s.Name == "gcxd_ttfr_seconds_count" && s.Label("query") == "q1" && s.Value >= 1 {
				found = true
			}
		}
		if !found {
			t.Fatal("gcxd_ttfr_seconds_count{query=\"q1\"} not >= 1 after serving q1")
		}
	})

	t.Run("degraded registry", func(t *testing.T) {
		missing := filepath.Join(t.TempDir(), "nope")
		base, stop := bootGcxd(t, bin, "-listen", "127.0.0.1:0", "-queries", missing)
		defer stop()

		expectStatus(t, base+"/healthz", http.StatusOK) // alive...
		resp, err := http.Get(base + "/readyz")         // ...but not ready
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "registry") {
			t.Fatalf("degraded boot: /readyz %d %q, want 503 naming the registry", resp.StatusCode, body)
		}
	})
}

var listenLine = regexp.MustCompile(`gcxd: listening on ([0-9.:\[\]]+)`)

// bootGcxd starts the binary and parses the resolved listen address from
// its log line.
func bootGcxd(t *testing.T, bin string, args ...string) (base string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
				addr <- m[1]
			}
		}
	}()
	stop = func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	select {
	case a := <-addr:
		return "http://" + a, stop
	case <-time.After(15 * time.Second):
		stop()
		t.Fatal("gcxd never logged its listen address")
		return "", nil
	}
}

func expectStatus(t *testing.T, url string, want int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("%s: status %d (%s), want %d", url, resp.StatusCode, body, want)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}
