// Command gcxd serves streaming XQuery evaluation over HTTP.
//
// Clients POST an XML document; the body is fed to the engine as a
// stream (never fully buffered), so per-request memory stays at the GCX
// buffer peak regardless of document size. Queries are given inline
// (?q=...) or by id from a registry loaded at startup; several
// registered queries can be evaluated over ONE pass of the body via
// POST /workload.
//
// Usage:
//
//	gcxd -listen :8080 -queries queries.xq
//	curl -X POST --data-binary @doc.xml 'localhost:8080/query?id=q1'
//	curl -X POST --data-binary @doc.xml --url-query 'q=<r>{ for $b in /bib/book return $b/title }</r>' 'localhost:8080/query'
//	curl -X POST --data-binary @doc.xml 'localhost:8080/workload'
//	curl -X POST -H 'Content-Type: application/x-tar' --data-binary @corpus.tar 'localhost:8080/bulk?id=q1&j=8'
//	cat *.xml | curl -X POST --data-binary @- 'localhost:8080/bulk?id=q1'
//	curl 'localhost:8080/metrics'
//
// Operational endpoints: GET /healthz (liveness), GET /readyz
// (readiness: registry loaded and the server not saturated), GET
// /buildinfo (build metadata), GET /metrics (Prometheus text with
// latency/TTFR histograms; ?format=json), and — behind -pprof — the
// net/http/pprof suite under /debug/pprof/.
//
// The registry file holds one query, or several separated by "=== <id>"
// lines; a directory registers every *.xq file under its basename.
// SIGHUP reloads the registry in place: unchanged queries keep their
// compiled artifacts, and a registry that fails to load or compile is
// rejected while the previous one keeps serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcx"
	"gcx/internal/bench"
	"gcx/internal/server"
)

func main() {
	var (
		listen      = flag.String("listen", ":8080", "address to listen on (use :0 for an ephemeral port; the resolved address is logged)")
		queries     = flag.String("queries", "", "query registry: a file (queries separated by '=== <id>' lines) or a directory of *.xq files")
		mode        = flag.String("mode", "gcx", "buffering strategy: gcx, static, full")
		cacheCap    = flag.Int("cache", gcx.DefaultCompileCacheCapacity, "compile cache capacity (entries)")
		maxBody     = flag.String("max-body", "256MB", "maximum request body size (0 = unlimited)")
		maxDoc      = flag.String("max-doc", "64MB", "maximum size of a single /bulk corpus document (0 = unlimited)")
		bulkJobs    = flag.Int("bulk-workers", 0, "per-request /bulk worker cap and default (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request evaluation timeout (0 = none)")
		readBatch   = flag.Int("read-batch", 0, "workload scheduler token batch (0 = default)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain period")
		maxInflight = flag.Int("max-inflight", 0, "in-flight request count at which /readyz reports 503 (0 = readiness ignores load)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if err := run(config{
		listen:      *listen,
		queriesPath: *queries,
		mode:        *mode,
		cacheCap:    *cacheCap,
		maxBody:     *maxBody,
		maxDoc:      *maxDoc,
		bulkJobs:    *bulkJobs,
		timeout:     *timeout,
		readBatch:   *readBatch,
		drain:       *drain,
		maxInflight: *maxInflight,
		pprof:       *pprofOn,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gcxd:", err)
		os.Exit(1)
	}
}

type config struct {
	listen      string
	queriesPath string
	mode        string
	cacheCap    int
	maxBody     string
	maxDoc      string
	bulkJobs    int
	timeout     time.Duration
	readBatch   int
	drain       time.Duration
	maxInflight int
	pprof       bool
}

func run(c config) error {
	var opts []gcx.Option
	switch c.mode {
	case "gcx":
	case "static":
		opts = append(opts, gcx.WithStrategy(gcx.StaticOnly))
	case "full":
		opts = append(opts, gcx.WithStrategy(gcx.FullBuffer))
	default:
		return fmt.Errorf("unknown mode %q (want gcx, static, or full)", c.mode)
	}
	if c.readBatch > 0 {
		opts = append(opts, gcx.WithReadBatch(c.readBatch))
	}

	maxBodyBytes, err := bench.ParseSize(c.maxBody)
	if err != nil {
		return fmt.Errorf("-max-body: %w", err)
	}
	maxDocBytes, err := bench.ParseSize(c.maxDoc)
	if err != nil {
		return fmt.Errorf("-max-doc: %w", err)
	}

	// A registry that fails to load boots the server DEGRADED rather than
	// not at all: inline queries, liveness, and metrics keep working, and
	// /readyz reports 503 with the reason so orchestrators hold traffic
	// while the operator fixes the registry.
	var reg *server.Registry
	var regErr error
	if c.queriesPath != "" {
		reg, regErr = server.LoadRegistry(c.queriesPath)
		if regErr != nil {
			reg = nil
			fmt.Fprintf(os.Stderr, "gcxd: registry %s unavailable, booting not-ready: %v\n", c.queriesPath, regErr)
		}
	}

	srv, err := server.New(server.Config{
		Registry:     reg,
		Cache:        gcx.NewCompileCache(c.cacheCap),
		Options:      opts,
		MaxBodyBytes: maxBodyBytes,
		MaxDocBytes:  maxDocBytes,
		BulkWorkers:  c.bulkJobs,
		Timeout:      c.timeout,
		MaxInflight:  c.maxInflight,
		EnablePprof:  c.pprof,
	})
	if err != nil {
		return err
	}
	if regErr != nil {
		srv.SetNotReady(fmt.Sprintf("registry %s: %v", c.queriesPath, regErr))
	}
	if reg != nil {
		fmt.Fprintf(os.Stderr, "gcxd: registered %d queries from %s\n", reg.Len(), c.queriesPath)
	}

	hs := &http.Server{
		Handler: srv,
		// Connection-level backstops: the per-request evaluation timeout
		// is enforced inside the handler (input reads and output writes
		// both check the deadline), but a fully stalled client blocks in
		// the kernel where no check runs — the socket deadlines bound
		// that. WriteTimeout spans body read + evaluation + response, so
		// it gets headroom over the evaluation timeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if c.timeout > 0 {
		hs.WriteTimeout = 2 * c.timeout
	}

	// Listen before serving so the RESOLVED address (meaningful with
	// -listen :0) is logged on one parseable line; the ops smoke test and
	// local tooling scrape it.
	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP reloads the query registry in place: unchanged ids keep
	// their compiled artifacts in the serving fleet, a broken new registry
	// rejects the reload and the old one keeps serving.
	if c.queriesPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				newReg, err := server.LoadRegistry(c.queriesPath)
				if err == nil {
					err = srv.ReloadRegistry(newReg)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "gcxd: registry reload failed, keeping previous: %v\n", err)
					continue
				}
				srv.SetReady()
				fmt.Fprintf(os.Stderr, "gcxd: registry reloaded: %d queries from %s\n", newReg.Len(), c.queriesPath)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gcxd: listening on %s (mode %s)\n", ln.Addr(), c.mode)
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "gcxd: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), c.drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
