// Command gcxd serves streaming XQuery evaluation over HTTP.
//
// Clients POST an XML document; the body is fed to the engine as a
// stream (never fully buffered), so per-request memory stays at the GCX
// buffer peak regardless of document size. Queries are given inline
// (?q=...) or by id from a registry loaded at startup; several
// registered queries can be evaluated over ONE pass of the body via
// POST /workload.
//
// Usage:
//
//	gcxd -listen :8080 -queries queries.xq
//	curl -X POST --data-binary @doc.xml 'localhost:8080/query?id=q1'
//	curl -X POST --data-binary @doc.xml --url-query 'q=<r>{ for $b in /bib/book return $b/title }</r>' 'localhost:8080/query'
//	curl -X POST --data-binary @doc.xml 'localhost:8080/workload'
//	curl -X POST -H 'Content-Type: application/x-tar' --data-binary @corpus.tar 'localhost:8080/bulk?id=q1&j=8'
//	cat *.xml | curl -X POST --data-binary @- 'localhost:8080/bulk?id=q1'
//	curl 'localhost:8080/metrics'
//
// The registry file holds one query, or several separated by "=== <id>"
// lines; a directory registers every *.xq file under its basename.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcx"
	"gcx/internal/bench"
	"gcx/internal/server"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "address to listen on")
		queries   = flag.String("queries", "", "query registry: a file (queries separated by '=== <id>' lines) or a directory of *.xq files")
		mode      = flag.String("mode", "gcx", "buffering strategy: gcx, static, full")
		cacheCap  = flag.Int("cache", gcx.DefaultCompileCacheCapacity, "compile cache capacity (entries)")
		maxBody   = flag.String("max-body", "256MB", "maximum request body size (0 = unlimited)")
		maxDoc    = flag.String("max-doc", "64MB", "maximum size of a single /bulk corpus document (0 = unlimited)")
		bulkJobs  = flag.Int("bulk-workers", 0, "per-request /bulk worker cap and default (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-request evaluation timeout (0 = none)")
		readBatch = flag.Int("read-batch", 0, "workload scheduler token batch (0 = default)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown drain period")
	)
	flag.Parse()
	if err := run(*listen, *queries, *mode, *cacheCap, *maxBody, *maxDoc, *bulkJobs, *timeout, *readBatch, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "gcxd:", err)
		os.Exit(1)
	}
}

func run(listen, queriesPath, mode string, cacheCap int, maxBody, maxDoc string, bulkJobs int, timeout time.Duration, readBatch int, drain time.Duration) error {
	var opts []gcx.Option
	switch mode {
	case "gcx":
	case "static":
		opts = append(opts, gcx.WithStrategy(gcx.StaticOnly))
	case "full":
		opts = append(opts, gcx.WithStrategy(gcx.FullBuffer))
	default:
		return fmt.Errorf("unknown mode %q (want gcx, static, or full)", mode)
	}
	if readBatch > 0 {
		opts = append(opts, gcx.WithReadBatch(readBatch))
	}

	maxBodyBytes, err := bench.ParseSize(maxBody)
	if err != nil {
		return fmt.Errorf("-max-body: %w", err)
	}
	maxDocBytes, err := bench.ParseSize(maxDoc)
	if err != nil {
		return fmt.Errorf("-max-doc: %w", err)
	}

	var reg *server.Registry
	if queriesPath != "" {
		reg, err = server.LoadRegistry(queriesPath)
		if err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Registry:     reg,
		Cache:        gcx.NewCompileCache(cacheCap),
		Options:      opts,
		MaxBodyBytes: maxBodyBytes,
		MaxDocBytes:  maxDocBytes,
		BulkWorkers:  bulkJobs,
		Timeout:      timeout,
	})
	if err != nil {
		return err
	}
	if reg != nil {
		fmt.Fprintf(os.Stderr, "gcxd: registered %d queries from %s\n", reg.Len(), queriesPath)
	}

	hs := &http.Server{
		Addr:    listen,
		Handler: srv,
		// Connection-level backstops: the per-request evaluation timeout
		// is enforced inside the handler (input reads and output writes
		// both check the deadline), but a fully stalled client blocks in
		// the kernel where no check runs — the socket deadlines bound
		// that. WriteTimeout spans body read + evaluation + response, so
		// it gets headroom over the evaluation timeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if timeout > 0 {
		hs.WriteTimeout = 2 * timeout
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gcxd: listening on %s (mode %s)\n", listen, mode)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "gcxd: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
