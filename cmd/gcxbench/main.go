// Command gcxbench reproduces Table 1 of the paper: it sweeps the XMark
// queries Q1, Q6, Q8, Q13, Q20 over generated documents of the requested
// sizes and prints evaluation time and buffer high watermark for each
// engine (GCX, StaticOnly, FullBuffer).
//
// The paper's full sweep:
//
//	gcxbench -sizes 10MB,50MB,100MB,200MB -timeout 1h
//
// A laptop-scale smoke run (the default):
//
//	gcxbench
//
// Serving trajectory (solo Engine.Run vs shared-stream Workload.Run vs
// HTTP POST /workload against an in-process gcxd), written as a JSON
// artifact for CI trend tracking:
//
//	gcxbench -serve-json BENCH_serve.json -serve-doc 1MB -serve-requests 50
//
// Raw tokenizer throughput (chunked vs the retained per-byte reference
// scanner vs the projected engine path, text-heavy and markup-heavy
// documents):
//
//	gcxbench -tokenizer-json BENCH_tokenizer.json
//
// Subscription scale (gcx.Registry with one shared projection automaton
// vs one automaton per subscription, swept over subscription counts):
//
//	gcxbench -subs-json BENCH_subs.json -subs 10,100,1000,10000
//
// Benchmark regression gate (CI): compare fresh reports against the
// committed baseline, exiting non-zero when any per-metric tolerance is
// breached; and regenerate the baseline from fresh reports:
//
//	gcxbench -check BENCH_baseline.json -serve-in BENCH_serve.json \
//	    -bulk-in BENCH_bulk.json -tokenizer-in BENCH_tokenizer.json
//	gcxbench -baseline-out BENCH_baseline.json -serve-in ... -bulk-in ... \
//	    -tokenizer-in ... -note "github-hosted runner, 2026-07"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gcx/internal/bench"
	"gcx/internal/engine"
	"gcx/internal/queries"
)

func main() {
	var (
		sizes   = flag.String("sizes", "2MB,10MB", "comma-separated document sizes")
		qnames  = flag.String("queries", "Q1,Q6,Q8,Q13,Q20", "comma-separated query names")
		modes   = flag.String("modes", "gcx,static,full", "engines to compare")
		seed    = flag.Uint64("seed", 1, "document generator seed")
		timeout = flag.Duration("timeout", 15*time.Minute, "per-run timeout (paper: 1h); 0 disables")
		dir     = flag.String("dir", "", "directory for cached documents (default OS temp)")
		csv     = flag.String("csv", "", "also write results as CSV to this file")
		schema  = flag.Bool("schema", false, "add a GCX+DTD column (schema-aware early termination with the XMark DTD)")

		serveJSON        = flag.String("serve-json", "", "run the serving-path benchmark instead of the Table 1 sweep and write the JSON report to this file")
		serveDoc         = flag.String("serve-doc", "1MB", "serving benchmark document size")
		serveRequests    = flag.Int("serve-requests", 20, "serving benchmark iterations per path")
		serveConcurrency = flag.Int("serve-concurrency", 4, "concurrent HTTP clients on the server path")

		bulkJSON  = flag.String("bulk-json", "", "run the bulk-corpus scaling benchmark instead of the Table 1 sweep and write the JSON report to this file")
		bulkDocs  = flag.Int("bulk-docs", 64, "bulk benchmark corpus size in documents")
		bulkDoc   = flag.String("bulk-doc", "256KB", "bulk benchmark mean document size")
		bulkQuery = flag.String("bulk-query", "Q6", "bulk benchmark query name")
		bulkJobs  = flag.String("bulk-j", "", "comma-separated worker counts to sweep (default 1,2,4,GOMAXPROCS)")

		tokJSON  = flag.String("tokenizer-json", "", "run the tokenizer throughput benchmark (chunked vs reference vs projected) and write the JSON report to this file")
		tokDoc   = flag.String("tok-doc", "4MB", "tokenizer benchmark document size")
		tokIters = flag.Int("tok-iters", 10, "tokenizer benchmark passes per cell")

		subsJSON   = flag.String("subs-json", "", "run the subscription-scale benchmark (gcx.Registry vs one-automaton-per-subscription) and write the JSON report to this file")
		subsCounts = flag.String("subs", "10,100,1000,10000", "comma-separated subscription counts to sweep")
		subsDoc    = flag.String("subs-doc", "128KB", "subscription benchmark document size")
		subsIters  = flag.Int("subs-iters", 3, "subscription benchmark runs per count")

		checkPath   = flag.String("check", "", "compare benchmark reports against this committed baseline JSON and exit non-zero on regression")
		checkTol    = flag.Float64("check-tol", 1.0, "multiply the relative regression budgets (throughput/alloc/peak) by this factor")
		baselineOut = flag.String("baseline-out", "", "assemble a baseline JSON from the -*-in reports and write it to this file")
		serveIn     = flag.String("serve-in", "", "BENCH_serve.json to check or fold into a baseline")
		bulkIn      = flag.String("bulk-in", "", "BENCH_bulk.json to check or fold into a baseline")
		tokIn       = flag.String("tokenizer-in", "", "BENCH_tokenizer.json to check or fold into a baseline")
		subsIn      = flag.String("subs-in", "", "BENCH_subs.json to check or fold into a baseline")
		note        = flag.String("note", "", "provenance note stored in the baseline written by -baseline-out")
	)
	flag.Parse()

	if *checkPath != "" {
		if err := runCheck(*checkPath, *serveIn, *bulkIn, *tokIn, *subsIn, *checkTol); err != nil {
			fatal(err)
		}
		return
	}
	if *baselineOut != "" {
		if err := runBaselineOut(*baselineOut, *serveIn, *bulkIn, *tokIn, *subsIn, *note); err != nil {
			fatal(err)
		}
		return
	}
	if *subsJSON != "" {
		if err := runSubs(*subsJSON, *subsCounts, *subsDoc, *seed, *subsIters); err != nil {
			fatal(err)
		}
		return
	}
	if *serveJSON != "" {
		if err := runServe(*serveJSON, *serveDoc, *qnames, *seed, *serveRequests, *serveConcurrency); err != nil {
			fatal(err)
		}
		return
	}
	if *bulkJSON != "" {
		if err := runBulk(*bulkJSON, *bulkDoc, *bulkQuery, *bulkJobs, *seed, *bulkDocs); err != nil {
			fatal(err)
		}
		return
	}
	if *tokJSON != "" {
		if err := runTokenizer(*tokJSON, *tokDoc, *seed, *tokIters); err != nil {
			fatal(err)
		}
		return
	}

	cfg := bench.Config{
		Seed:       *seed,
		Timeout:    *timeout,
		Dir:        *dir,
		Progress:   os.Stderr,
		WithSchema: *schema,
	}
	for _, s := range strings.Split(*sizes, ",") {
		b, err := bench.ParseSize(s)
		if err != nil {
			fatal(err)
		}
		cfg.Sizes = append(cfg.Sizes, b)
	}
	for _, name := range strings.Split(*qnames, ",") {
		q := queries.ByName(strings.TrimSpace(name))
		if q.Name == "" {
			fatal(fmt.Errorf("unknown query %q", name))
		}
		cfg.Queries = append(cfg.Queries, q)
	}
	for _, m := range strings.Split(*modes, ",") {
		switch strings.TrimSpace(m) {
		case "gcx":
			cfg.Modes = append(cfg.Modes, engine.ModeGCX)
		case "static":
			cfg.Modes = append(cfg.Modes, engine.ModeStaticOnly)
		case "full":
			cfg.Modes = append(cfg.Modes, engine.ModeFullBuffer)
		default:
			fatal(fmt.Errorf("unknown mode %q (want gcx, static, full)", m))
		}
	}

	results, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(bench.FormatTable(results))

	if *csv != "" {
		if err := os.WriteFile(*csv, []byte(bench.FormatCSV(results)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csv)
	}
}

func runServe(outPath, docSize, qnames string, seed uint64, requests, concurrency int) error {
	docBytes, err := bench.ParseSize(docSize)
	if err != nil {
		return err
	}
	cfg := bench.ServeConfig{
		DocBytes:    docBytes,
		Seed:        seed,
		Requests:    requests,
		Concurrency: concurrency,
		Progress:    os.Stderr,
	}
	for _, name := range strings.Split(qnames, ",") {
		q := queries.ByName(strings.TrimSpace(name))
		if q.Name == "" {
			return fmt.Errorf("unknown query %q", name)
		}
		cfg.Queries = append(cfg.Queries, q)
	}
	rep, err := bench.RunServe(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(bench.FormatServeTable(rep))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func runBulk(outPath, docSize, queryName, jobsList string, seed uint64, docs int) error {
	docBytes, err := bench.ParseSize(docSize)
	if err != nil {
		return err
	}
	q := queries.ByName(strings.TrimSpace(queryName))
	if q.Name == "" {
		return fmt.Errorf("unknown query %q", queryName)
	}
	cfg := bench.BulkConfig{
		Docs:     docs,
		DocBytes: docBytes,
		Seed:     seed,
		Query:    q,
		Progress: os.Stderr,
	}
	if jobsList != "" {
		for _, s := range strings.Split(jobsList, ",") {
			j, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || j < 1 {
				return fmt.Errorf("bad -bulk-j value %q", s)
			}
			cfg.Workers = append(cfg.Workers, j)
		}
	}
	rep, err := bench.RunBulk(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(bench.FormatBulkTable(rep))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func runTokenizer(outPath, docSize string, seed uint64, iters int) error {
	docBytes, err := bench.ParseSize(docSize)
	if err != nil {
		return err
	}
	rep, err := bench.RunTokenizer(bench.TokenizerConfig{
		DocBytes: docBytes,
		Seed:     seed,
		Iters:    iters,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(bench.FormatTokenizerTable(rep))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func runSubs(outPath, counts, docSize string, seed uint64, iters int) error {
	docBytes, err := bench.ParseSize(docSize)
	if err != nil {
		return err
	}
	cfg := bench.SubsConfig{
		DocBytes:   docBytes,
		Seed:       seed,
		Iterations: iters,
		Progress:   os.Stderr,
	}
	for _, s := range strings.Split(counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -subs value %q", s)
		}
		cfg.Counts = append(cfg.Counts, n)
	}
	rep, err := bench.RunSubs(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(bench.FormatSubsTable(rep))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// assembleBaseline folds the individual report files (empty paths are
// skipped) into one Baseline document.
func assembleBaseline(serveIn, bulkIn, tokIn, subsIn string) (*bench.Baseline, error) {
	var b bench.Baseline
	if serveIn != "" {
		if err := readJSON(serveIn, &b.Serve); err != nil {
			return nil, err
		}
	}
	if bulkIn != "" {
		if err := readJSON(bulkIn, &b.Bulk); err != nil {
			return nil, err
		}
	}
	if tokIn != "" {
		if err := readJSON(tokIn, &b.Tokenizer); err != nil {
			return nil, err
		}
	}
	if subsIn != "" {
		if err := readJSON(subsIn, &b.Subs); err != nil {
			return nil, err
		}
	}
	return &b, nil
}

func readJSON(path string, dst any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, dst); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// runCheck is the CI regression gate: compare the current run's reports
// against the committed baseline and fail loudly on any breached budget.
func runCheck(baselinePath, serveIn, bulkIn, tokIn, subsIn string, tolFactor float64) error {
	base, err := bench.LoadBaseline(baselinePath)
	if err != nil {
		return err
	}
	cur, err := assembleBaseline(serveIn, bulkIn, tokIn, subsIn)
	if err != nil {
		return err
	}
	tol := bench.DefaultTolerances().Scale(tolFactor)
	violations, warnings := base.Compare(cur, tol)
	// Warnings (e.g. a runner hardware-class change that suspends the
	// absolute throughput floors until the baseline is regenerated) are
	// advisory: print them loudly but do not fail the gate.
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "  WARN %s\n", w)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "gcxbench -check: %d regression(s) against %s:\n", len(violations), baselinePath)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  FAIL %s\n", v)
		}
		os.Exit(1)
	}
	if len(warnings) > 0 {
		fmt.Printf("gcxbench -check: gated metrics within tolerance of %s (%d warning(s) above)\n", baselinePath, len(warnings))
		return nil
	}
	fmt.Printf("gcxbench -check: all metrics within tolerance of %s\n", baselinePath)
	return nil
}

func runBaselineOut(outPath, serveIn, bulkIn, tokIn, subsIn, note string) error {
	b, err := assembleBaseline(serveIn, bulkIn, tokIn, subsIn)
	if err != nil {
		return err
	}
	if b.Serve == nil && b.Bulk == nil && b.Tokenizer == nil && b.Subs == nil {
		return fmt.Errorf("-baseline-out needs at least one of -serve-in, -bulk-in, -tokenizer-in, -subs-in")
	}
	b.Note = note
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcxbench:", err)
	os.Exit(1)
}
