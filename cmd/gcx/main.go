// Command gcx runs an XQuery (fragment XQ) over an XML document or stream
// with the GCX buffer-minimization technique.
//
// Usage:
//
//	gcx -query query.xq [-input doc.xml] [-mode gcx|static|full]
//	    [-explain] [-trace] [-stats] [-no-early-updates]
//	    [-no-aggregate-roles] [-no-role-elimination]
//
// The query result is written to stdout; statistics and diagnostics go to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcx"
)

func main() {
	var (
		queryFile   = flag.String("query", "", "file containing the query (or use -q)")
		queryText   = flag.String("q", "", "query text given inline")
		inputFile   = flag.String("input", "", "XML input file (default stdin)")
		mode        = flag.String("mode", "gcx", "buffering strategy: gcx, static, full")
		explain     = flag.Bool("explain", false, "print compilation diagnostics (projection tree, roles, rewritten query) and exit")
		trace       = flag.Bool("trace", false, "print a Figure-2-style buffer trace to stderr")
		stats       = flag.Bool("stats", false, "print run statistics to stderr")
		noEarly     = flag.Bool("no-early-updates", false, "disable the early-update optimization")
		noAggregate = flag.Bool("no-aggregate-roles", false, "disable aggregate roles")
		noElim      = flag.Bool("no-role-elimination", false, "disable redundant-role elimination")
	)
	flag.Parse()
	if err := run(*queryFile, *queryText, *inputFile, *mode, *explain, *trace, *stats, *noEarly, *noAggregate, *noElim); err != nil {
		fmt.Fprintln(os.Stderr, "gcx:", err)
		os.Exit(1)
	}
}

func run(queryFile, queryText, inputFile, mode string, explain, trace, stats, noEarly, noAggregate, noElim bool) error {
	if (queryFile == "") == (queryText == "") {
		return fmt.Errorf("exactly one of -query or -q is required")
	}
	src := queryText
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(data)
	}

	var opts []gcx.Option
	switch mode {
	case "gcx":
	case "static":
		opts = append(opts, gcx.WithStrategy(gcx.StaticOnly))
	case "full":
		opts = append(opts, gcx.WithStrategy(gcx.FullBuffer))
	default:
		return fmt.Errorf("unknown mode %q (want gcx, static, or full)", mode)
	}
	if noEarly {
		opts = append(opts, gcx.WithoutEarlyUpdates())
	}
	if noAggregate {
		opts = append(opts, gcx.WithoutAggregateRoles())
	}
	if noElim {
		opts = append(opts, gcx.WithoutRedundantRoleElimination())
	}

	eng, err := gcx.Compile(src, opts...)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintln(os.Stderr, eng.Explain())
		return nil
	}

	var in io.Reader = os.Stdin
	if inputFile != "" {
		f, err := os.Open(inputFile)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var st gcx.Stats
	if trace {
		steps, s, err := eng.Trace(in, os.Stdout)
		if err != nil {
			return err
		}
		st = s
		for i, step := range steps {
			fmt.Fprintf(os.Stderr, "step %d: %s\n", i+1, step.Event)
			if step.Buffer == "" {
				fmt.Fprintln(os.Stderr, "  (buffer empty)")
				continue
			}
			fmt.Fprint(os.Stderr, indent(step.Buffer))
		}
	} else {
		st, err = eng.Run(in, os.Stdout)
		if err != nil {
			return err
		}
	}
	fmt.Println()

	if stats {
		fmt.Fprintf(os.Stderr, "tokens read:        %d\n", st.TokensRead)
		fmt.Fprintf(os.Stderr, "buffered total:     %d nodes\n", st.BufferedTotal)
		fmt.Fprintf(os.Stderr, "purged by GC:       %d nodes\n", st.PurgedTotal)
		fmt.Fprintf(os.Stderr, "signOffs executed:  %d\n", st.SignOffs)
		fmt.Fprintf(os.Stderr, "peak buffer:        %d nodes / %d bytes\n", st.PeakBufferNodes, st.PeakBufferBytes)
		fmt.Fprintf(os.Stderr, "output:             %d bytes\n", st.OutputBytes)
	}
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  | " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
