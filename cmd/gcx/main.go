// Command gcx runs one or more XQueries (fragment XQ) over an XML document
// or stream with the GCX buffer-minimization technique.
//
// Usage:
//
//	gcx -query query.xq [-query more.xq] [-q 'inline query']...
//	    [-input doc.xml] [-mode gcx|static|full]
//	    [-explain] [-trace] [-stats] [-stats-json] [-no-early-updates]
//	    [-no-aggregate-roles] [-no-role-elimination]
//
// -q and -query are repeatable and may be mixed; with more than one query
// the queries are compiled into a shared-stream workload: the input is
// tokenized, projected, and buffered ONCE, and each query's result is
// printed to stdout in query order (each query's output is identical to
// running it alone).
//
// Statistics and diagnostics go to stderr; -stats-json emits them as a
// single JSON object so benchmarks and CI can scrape them without parsing
// prose.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gcx"
)

// queryFlag appends to a shared query list, so mixing -q and -query
// preserves the true command-line order (output blocks are printed in the
// same order the queries were given).
type queryFlag struct {
	dst      *[]string
	fromFile bool
}

func (f queryFlag) String() string {
	if f.dst == nil {
		return ""
	}
	return fmt.Sprintf("%d queries", len(*f.dst))
}

func (f queryFlag) Set(v string) error {
	if f.fromFile {
		data, err := os.ReadFile(v)
		if err != nil {
			return err
		}
		v = string(data)
	}
	*f.dst = append(*f.dst, v)
	return nil
}

func main() {
	var srcs []string
	var (
		inputFile   = flag.String("input", "", "XML input file (default stdin)")
		mode        = flag.String("mode", "gcx", "buffering strategy: gcx, static, full")
		explain     = flag.Bool("explain", false, "print compilation diagnostics (projection tree, roles, rewritten query) and exit")
		trace       = flag.Bool("trace", false, "print a Figure-2-style buffer trace to stderr (single query only)")
		stats       = flag.Bool("stats", false, "print run statistics to stderr")
		statsJSON   = flag.Bool("stats-json", false, "print run statistics as one JSON object to stderr")
		noEarly     = flag.Bool("no-early-updates", false, "disable the early-update optimization")
		noAggregate = flag.Bool("no-aggregate-roles", false, "disable aggregate roles")
		noElim      = flag.Bool("no-role-elimination", false, "disable redundant-role elimination")
	)
	flag.Var(queryFlag{dst: &srcs, fromFile: true}, "query", "file containing a query (repeatable; multiple queries run as a shared-stream workload)")
	flag.Var(queryFlag{dst: &srcs}, "q", "query text given inline (repeatable)")
	flag.Parse()
	if err := run(srcs, *inputFile, *mode, *explain, *trace, *stats, *statsJSON, *noEarly, *noAggregate, *noElim); err != nil {
		fmt.Fprintln(os.Stderr, "gcx:", err)
		os.Exit(1)
	}
}

// jsonStats is the -stats-json document: aggregate is the run's stats (for
// a single query, the run IS the aggregate); queries is present only in
// workload mode.
type jsonStats struct {
	Strategy  string           `json:"strategy"`
	Aggregate gcx.Stats        `json:"aggregate"`
	Queries   []gcx.QueryStats `json:"queries,omitempty"`
}

func run(srcs []string, inputFile, mode string, explain, trace, stats, statsJSON, noEarly, noAggregate, noElim bool) error {
	if len(srcs) == 0 {
		return fmt.Errorf("at least one -query or -q is required")
	}

	var opts []gcx.Option
	switch mode {
	case "gcx":
	case "static":
		opts = append(opts, gcx.WithStrategy(gcx.StaticOnly))
	case "full":
		opts = append(opts, gcx.WithStrategy(gcx.FullBuffer))
	default:
		return fmt.Errorf("unknown mode %q (want gcx, static, or full)", mode)
	}
	if noEarly {
		opts = append(opts, gcx.WithoutEarlyUpdates())
	}
	if noAggregate {
		opts = append(opts, gcx.WithoutAggregateRoles())
	}
	if noElim {
		opts = append(opts, gcx.WithoutRedundantRoleElimination())
	}

	if len(srcs) > 1 {
		return runWorkload(srcs, inputFile, mode, explain, trace, stats, statsJSON, opts)
	}
	return runSingle(srcs[0], inputFile, mode, explain, trace, stats, statsJSON, opts)
}

func runSingle(src, inputFile, mode string, explain, trace, stats, statsJSON bool, opts []gcx.Option) error {
	eng, err := gcx.Compile(src, opts...)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintln(os.Stderr, eng.Explain())
		return nil
	}

	in, closeIn, err := openInput(inputFile)
	if err != nil {
		return err
	}
	defer closeIn()

	var st gcx.Stats
	if trace {
		steps, s, err := eng.Trace(in, os.Stdout)
		if err != nil {
			return err
		}
		st = s
		for i, step := range steps {
			fmt.Fprintf(os.Stderr, "step %d: %s\n", i+1, step.Event)
			if step.Buffer == "" {
				fmt.Fprintln(os.Stderr, "  (buffer empty)")
				continue
			}
			fmt.Fprint(os.Stderr, indent(step.Buffer))
		}
	} else {
		st, err = eng.Run(in, os.Stdout)
		if err != nil {
			return err
		}
	}
	fmt.Println()

	if stats {
		printStats(os.Stderr, st)
	}
	if statsJSON {
		return emitJSON(jsonStats{Strategy: modeLabel(mode), Aggregate: st})
	}
	return nil
}

func runWorkload(srcs []string, inputFile, mode string, explain, trace, stats, statsJSON bool, opts []gcx.Option) error {
	if trace {
		return fmt.Errorf("-trace supports a single query only")
	}
	w, err := gcx.CompileWorkload(srcs, opts...)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintln(os.Stderr, w.Explain())
		return nil
	}

	in, closeIn, err := openInput(inputFile)
	if err != nil {
		return err
	}
	defer closeIn()

	// Members produce output progressively along the shared pass, but
	// stdout must show one complete result per query in query order. The
	// FIRST query's bytes come first in that order anyway, so it streams
	// straight to stdout (bounded memory even for a huge first result);
	// the remaining members are buffered until the pass completes.
	stdout := bufio.NewWriter(os.Stdout)
	bufs := make([]bytes.Buffer, w.Len())
	outs := make([]io.Writer, w.Len())
	outs[0] = stdout
	for i := 1; i < w.Len(); i++ {
		outs[i] = &bufs[i]
	}
	st, err := w.Run(in, outs)
	if err != nil {
		stdout.Flush()
		return err
	}
	fmt.Fprintln(stdout)
	for i := 1; i < w.Len(); i++ {
		stdout.Write(bufs[i].Bytes())
		fmt.Fprintln(stdout)
	}
	if err := stdout.Flush(); err != nil {
		return err
	}

	if stats {
		printStats(os.Stderr, st.Aggregate)
		for i, q := range st.Queries {
			fmt.Fprintf(os.Stderr, "query %d:            %d bytes out, %d signOffs, done at token %d\n",
				i, q.OutputBytes, q.SignOffs, q.TokensAtDone)
		}
	}
	if statsJSON {
		return emitJSON(jsonStats{Strategy: modeLabel(mode), Aggregate: st.Aggregate, Queries: st.Queries})
	}
	return nil
}

func openInput(inputFile string) (io.Reader, func(), error) {
	if inputFile == "" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(inputFile)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func modeLabel(mode string) string {
	switch mode {
	case "static":
		return gcx.StaticOnly.String()
	case "full":
		return gcx.FullBuffer.String()
	default:
		return gcx.GCX.String()
	}
}

func printStats(w io.Writer, st gcx.Stats) {
	fmt.Fprintf(w, "tokens read:        %d\n", st.TokensRead)
	fmt.Fprintf(w, "buffered total:     %d nodes\n", st.BufferedTotal)
	fmt.Fprintf(w, "purged by GC:       %d nodes\n", st.PurgedTotal)
	fmt.Fprintf(w, "signOffs executed:  %d\n", st.SignOffs)
	fmt.Fprintf(w, "peak buffer:        %d nodes / %d bytes\n", st.PeakBufferNodes, st.PeakBufferBytes)
	fmt.Fprintf(w, "output:             %d bytes\n", st.OutputBytes)
}

func emitJSON(v jsonStats) error {
	enc := json.NewEncoder(os.Stderr)
	return enc.Encode(v)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  | " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
