// Command gcx runs one or more XQueries (fragment XQ) over XML documents
// with the GCX buffer-minimization technique.
//
// Usage:
//
//	gcx -query query.xq [-query more.xq] [-q 'inline query']...
//	    [-input doc.xml]... [-j N] [-mode gcx|static|full]
//	    [-explain] [-trace] [-stats] [-stats-json] [-no-early-updates]
//	    [-no-aggregate-roles] [-no-role-elimination] [path ...]
//
// -q and -query are repeatable and may be mixed; with more than one query
// the queries are compiled into a shared-stream workload: the input is
// tokenized, projected, and buffered ONCE, and each query's result is
// printed to stdout in query order (each query's output is identical to
// running it alone).
//
// -input is repeatable, and positional arguments are further inputs: a
// file, a glob pattern, or a .tar archive of documents. More than one
// document selects BULK mode: the corpus is evaluated across -j parallel
// workers (default GOMAXPROCS) drawing pooled run states from one
// compiled engine, and results are printed in corpus order, each
// followed by a newline — byte-identical to looping gcx over the
// documents one at a time, only faster. A document that fails (bad XML,
// unreadable file) reports on stderr and exits non-zero at the end;
// sibling documents are unaffected.
//
// Statistics and diagnostics go to stderr; -stats-json emits them as a
// single JSON object so benchmarks and CI can scrape them without parsing
// prose.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gcx"
	"gcx/internal/corpus"
)

// queryFlag appends to a shared query list, so mixing -q and -query
// preserves the true command-line order (output blocks are printed in the
// same order the queries were given).
type queryFlag struct {
	dst      *[]string
	fromFile bool
}

func (f queryFlag) String() string {
	if f.dst == nil {
		return ""
	}
	return fmt.Sprintf("%d queries", len(*f.dst))
}

func (f queryFlag) Set(v string) error {
	if f.fromFile {
		data, err := os.ReadFile(v)
		if err != nil {
			return err
		}
		v = string(data)
	}
	*f.dst = append(*f.dst, v)
	return nil
}

// listFlag collects repeated string flag values.
type listFlag struct{ dst *[]string }

func (f listFlag) String() string {
	if f.dst == nil {
		return ""
	}
	return fmt.Sprintf("%d values", len(*f.dst))
}

func (f listFlag) Set(v string) error {
	*f.dst = append(*f.dst, v)
	return nil
}

func main() {
	var srcs, inputs []string
	var (
		mode        = flag.String("mode", "gcx", "buffering strategy: gcx, static, full")
		jobs        = flag.Int("j", 0, "bulk workers: parallel document evaluations (0 = GOMAXPROCS)")
		explain     = flag.Bool("explain", false, "print compilation diagnostics (projection tree, roles, rewritten query) and exit")
		trace       = flag.Bool("trace", false, "print a Figure-2-style buffer trace to stderr (single query, single document only)")
		stats       = flag.Bool("stats", false, "print run statistics to stderr")
		statsJSON   = flag.Bool("stats-json", false, "print run statistics as one JSON object to stderr")
		noEarly     = flag.Bool("no-early-updates", false, "disable the early-update optimization")
		noAggregate = flag.Bool("no-aggregate-roles", false, "disable aggregate roles")
		noElim      = flag.Bool("no-role-elimination", false, "disable redundant-role elimination")
	)
	flag.Var(queryFlag{dst: &srcs, fromFile: true}, "query", "file containing a query (repeatable; multiple queries run as a shared-stream workload)")
	flag.Var(queryFlag{dst: &srcs}, "q", "query text given inline (repeatable)")
	flag.Var(listFlag{dst: &inputs}, "input", "XML input: a file, glob pattern, or .tar archive of documents (repeatable; positional arguments are more inputs; default stdin; several documents evaluate in bulk)")
	flag.Parse()
	inputs = append(inputs, flag.Args()...)
	if err := run(srcs, inputs, *mode, *jobs, *explain, *trace, *stats, *statsJSON, *noEarly, *noAggregate, *noElim); err != nil {
		fmt.Fprintln(os.Stderr, "gcx:", err)
		os.Exit(1)
	}
}

// jsonStats is the -stats-json document: aggregate is the run's stats (for
// a single query, the run IS the aggregate); queries is present only in
// workload mode (summed across documents when bulk), bulk only when
// several documents were evaluated.
type jsonStats struct {
	Strategy  string           `json:"strategy"`
	Aggregate gcx.Stats        `json:"aggregate"`
	Queries   []gcx.QueryStats `json:"queries,omitempty"`
	Bulk      *gcx.BulkStats   `json:"bulk,omitempty"`
}

func run(srcs, inputs []string, mode string, jobs int, explain, trace, stats, statsJSON, noEarly, noAggregate, noElim bool) error {
	if len(srcs) == 0 {
		return fmt.Errorf("at least one -query or -q is required")
	}
	if jobs < 0 {
		return fmt.Errorf("-j %d: want a positive worker count (or 0 for GOMAXPROCS)", jobs)
	}

	var opts []gcx.Option
	switch mode {
	case "gcx":
	case "static":
		opts = append(opts, gcx.WithStrategy(gcx.StaticOnly))
	case "full":
		opts = append(opts, gcx.WithStrategy(gcx.FullBuffer))
	default:
		return fmt.Errorf("unknown mode %q (want gcx, static, or full)", mode)
	}
	if noEarly {
		opts = append(opts, gcx.WithoutEarlyUpdates())
	}
	if noAggregate {
		opts = append(opts, gcx.WithoutAggregateRoles())
	}
	if noElim {
		opts = append(opts, gcx.WithoutRedundantRoleElimination())
	}

	if inputFile, solo := resolveSoloInput(inputs); solo {
		if len(srcs) > 1 {
			return runWorkload(srcs, inputFile, mode, explain, trace, stats, statsJSON, opts)
		}
		return runSingle(srcs[0], inputFile, mode, explain, trace, stats, statsJSON, opts)
	}
	return runBulk(srcs, inputs, mode, jobs, explain, trace, stats, statsJSON, opts)
}

// resolveSoloInput reports whether the inputs name exactly one plain
// document — keeping the classic one-document pipeline byte-for-byte —
// and returns its path ("" = stdin). Several inputs, a tar archive,
// "-" (stdin as a concatenated stream), or a glob matching more than
// one file select bulk mode; a glob resolving to a single plain file
// (including the no-match literal fallback, so a file named
// "doc[1].xml" still works with -trace) stays solo.
func resolveSoloInput(inputs []string) (string, bool) {
	switch len(inputs) {
	case 0:
		return "", true
	case 1:
		p := inputs[0]
		if p == "-" || strings.HasSuffix(p, ".tar") {
			return "", false
		}
		if !strings.ContainsAny(p, "*?[") {
			return p, true
		}
		resolved, err := corpus.ExpandPatterns(p)
		if err == nil && len(resolved) == 1 && !strings.HasSuffix(resolved[0], ".tar") {
			return resolved[0], true
		}
		return "", false
	default:
		return "", false
	}
}

// runBulk evaluates the compiled query (or workload) over every
// document of the corpus, printing results to stdout in corpus order —
// the same bytes a per-document loop of solo gcx invocations would
// print. Failed documents report on stderr and make the run exit
// non-zero after every sibling has been served.
func runBulk(srcs, inputs []string, mode string, jobs int, explain, trace, stats, statsJSON bool, opts []gcx.Option) error {
	if trace {
		return fmt.Errorf("-trace supports a single document only")
	}
	var crp *gcx.Corpus
	if len(inputs) == 1 && inputs[0] == "-" {
		crp = gcx.CorpusConcat(os.Stdin)
	} else {
		for _, in := range inputs {
			if in == "-" {
				return fmt.Errorf(`"-" (stdin corpus) cannot be mixed with other inputs`)
			}
		}
		var err error
		crp, err = gcx.CorpusPaths(inputs...)
		if err != nil {
			return err
		}
	}
	stdout := bufio.NewWriter(os.Stdout)
	bopts := gcx.BulkOptions{Workers: jobs}

	var bs gcx.BulkStats
	var qagg []gcx.QueryStats // per-member stats summed across documents
	emit := func(d gcx.BulkDoc) error {
		if len(d.Queries) > 0 {
			if qagg == nil {
				qagg = make([]gcx.QueryStats, len(d.Queries))
			}
			for i, q := range d.Queries {
				qagg[i].OutputBytes += q.OutputBytes
				qagg[i].SignOffs += q.SignOffs
				qagg[i].RoleAssignments += q.RoleAssignments
				qagg[i].RoleRemovals += q.RoleRemovals
				qagg[i].TokensAtDone += q.TokensAtDone
			}
		}
		// Propagate output failures (full disk, closed pipe): returning
		// the error cancels dispatch instead of evaluating the rest of
		// the corpus for a sink that is already gone.
		write := func(b []byte, newline bool) error {
			if _, err := stdout.Write(b); err != nil {
				return err
			}
			if !newline {
				return nil
			}
			_, err := fmt.Fprintln(stdout)
			return err
		}
		if d.Err != nil {
			fmt.Fprintf(os.Stderr, "gcx: %s\n", gcx.BulkError(d))
			// Match the solo error path byte for byte: a failing solo run
			// prints its partial output with no trailing newline (and a
			// failing workload run flushes only the streamed first
			// member).
			if len(d.Outputs) > 0 {
				return write(d.Outputs[0], false)
			}
			return write(d.Output, false)
		}
		if len(d.Outputs) > 0 { // workload bulk: one block per member query
			for _, out := range d.Outputs {
				if err := write(out, true); err != nil {
					return err
				}
			}
			return nil
		}
		return write(d.Output, true)
	}

	if len(srcs) > 1 {
		w, err := gcx.CompileWorkload(srcs, opts...)
		if err != nil {
			return err
		}
		if explain {
			fmt.Fprintln(os.Stderr, w.Explain())
			return nil
		}
		bs, err = w.Bulk(crp, bopts, emit)
		if err != nil {
			stdout.Flush()
			return err
		}
	} else {
		eng, err := gcx.Compile(srcs[0], opts...)
		if err != nil {
			return err
		}
		if explain {
			fmt.Fprintln(os.Stderr, eng.Explain())
			return nil
		}
		bs, err = eng.Bulk(crp, bopts, emit)
		if err != nil {
			stdout.Flush()
			return err
		}
	}
	if err := stdout.Flush(); err != nil {
		return err
	}

	if stats {
		printStats(os.Stderr, bs.Aggregate)
		fmt.Fprintf(os.Stderr, "documents:          %d (%d failed), %d workers, %.0f%% pool utilization\n",
			bs.Docs, bs.Failed, bs.Workers, 100*bs.Utilization())
	}
	if statsJSON {
		// In workload-bulk mode the queries block carries each member's
		// additive stats summed across the corpus (TokensAtDone included:
		// the total stream position consumed for that member over all
		// documents).
		if err := emitJSON(jsonStats{Strategy: modeLabel(mode), Aggregate: bs.Aggregate, Queries: qagg, Bulk: &bs}); err != nil {
			return err
		}
	}
	if bs.Failed > 0 {
		return fmt.Errorf("%d of %d documents failed", bs.Failed, bs.Docs)
	}
	return nil
}

func runSingle(src, inputFile, mode string, explain, trace, stats, statsJSON bool, opts []gcx.Option) error {
	eng, err := gcx.Compile(src, opts...)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintln(os.Stderr, eng.Explain())
		return nil
	}

	in, closeIn, err := openInput(inputFile)
	if err != nil {
		return err
	}
	defer closeIn()

	var st gcx.Stats
	if trace {
		steps, s, err := eng.Trace(in, os.Stdout)
		if err != nil {
			return err
		}
		st = s
		for i, step := range steps {
			fmt.Fprintf(os.Stderr, "step %d: %s\n", i+1, step.Event)
			if step.Buffer == "" {
				fmt.Fprintln(os.Stderr, "  (buffer empty)")
				continue
			}
			fmt.Fprint(os.Stderr, indent(step.Buffer))
		}
	} else {
		st, err = eng.Run(in, os.Stdout)
		if err != nil {
			return err
		}
	}
	fmt.Println()

	if stats {
		printStats(os.Stderr, st)
	}
	if statsJSON {
		return emitJSON(jsonStats{Strategy: modeLabel(mode), Aggregate: st})
	}
	return nil
}

func runWorkload(srcs []string, inputFile, mode string, explain, trace, stats, statsJSON bool, opts []gcx.Option) error {
	if trace {
		return fmt.Errorf("-trace supports a single query only")
	}
	w, err := gcx.CompileWorkload(srcs, opts...)
	if err != nil {
		return err
	}
	if explain {
		fmt.Fprintln(os.Stderr, w.Explain())
		return nil
	}

	in, closeIn, err := openInput(inputFile)
	if err != nil {
		return err
	}
	defer closeIn()

	// Members produce output progressively along the shared pass, but
	// stdout must show one complete result per query in query order. The
	// FIRST query's bytes come first in that order anyway, so it streams
	// straight to stdout (bounded memory even for a huge first result);
	// the remaining members are buffered until the pass completes.
	stdout := bufio.NewWriter(os.Stdout)
	bufs := make([]bytes.Buffer, w.Len())
	outs := make([]io.Writer, w.Len())
	outs[0] = stdout
	for i := 1; i < w.Len(); i++ {
		outs[i] = &bufs[i]
	}
	st, err := w.Run(in, outs)
	if err != nil {
		stdout.Flush()
		return err
	}
	fmt.Fprintln(stdout)
	for i := 1; i < w.Len(); i++ {
		stdout.Write(bufs[i].Bytes())
		fmt.Fprintln(stdout)
	}
	if err := stdout.Flush(); err != nil {
		return err
	}

	if stats {
		printStats(os.Stderr, st.Aggregate)
		for i, q := range st.Queries {
			fmt.Fprintf(os.Stderr, "query %d:            %d bytes out, %d signOffs, done at token %d\n",
				i, q.OutputBytes, q.SignOffs, q.TokensAtDone)
		}
	}
	if statsJSON {
		return emitJSON(jsonStats{Strategy: modeLabel(mode), Aggregate: st.Aggregate, Queries: st.Queries})
	}
	return nil
}

func openInput(inputFile string) (io.Reader, func(), error) {
	if inputFile == "" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(inputFile)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func modeLabel(mode string) string {
	switch mode {
	case "static":
		return gcx.StaticOnly.String()
	case "full":
		return gcx.FullBuffer.String()
	default:
		return gcx.GCX.String()
	}
}

func printStats(w io.Writer, st gcx.Stats) {
	fmt.Fprintf(w, "tokens read:        %d\n", st.TokensRead)
	fmt.Fprintf(w, "buffered total:     %d nodes\n", st.BufferedTotal)
	fmt.Fprintf(w, "purged by GC:       %d nodes\n", st.PurgedTotal)
	fmt.Fprintf(w, "signOffs executed:  %d\n", st.SignOffs)
	fmt.Fprintf(w, "peak buffer:        %d nodes / %d bytes\n", st.PeakBufferNodes, st.PeakBufferBytes)
	fmt.Fprintf(w, "output:             %d bytes\n", st.OutputBytes)
	if st.EvalWallNanos > 0 {
		if st.TimeToFirstResultNanos > 0 {
			fmt.Fprintf(w, "first result after: %s\n", time.Duration(st.TimeToFirstResultNanos))
		}
		fmt.Fprintf(w, "evaluation took:    %s\n", time.Duration(st.EvalWallNanos))
	}
}

func emitJSON(v jsonStats) error {
	enc := json.NewEncoder(os.Stderr)
	return enc.Encode(v)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  | " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
