// Command xmarkgen generates synthetic XMark-style auction documents (the
// benchmark data of the paper's Section 7; see internal/xmark for the
// substitution notes).
//
// Usage:
//
//	xmarkgen -size 10MB [-seed 1] [-o doc.xml]
//	xmarkgen -factor 0.1 [-seed 1] [-o doc.xml]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcx/internal/bench"
	"gcx/internal/xmark"
)

func main() {
	var (
		size   = flag.String("size", "", "approximate target size, e.g. 10MB, 512KB, 2GB")
		factor = flag.Float64("factor", 0, "XMark scale factor (1.0 ≈ 82MB); overrides -size")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	f := *factor
	if f == 0 {
		if *size == "" {
			fmt.Fprintln(os.Stderr, "xmarkgen: one of -size or -factor is required")
			os.Exit(2)
		}
		bytes, err := bench.ParseSize(*size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(2)
		}
		f = xmark.FactorForSize(bytes)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}

	n, err := xmark.Generate(w, xmark.Config{Factor: f, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xmarkgen: wrote %d bytes (factor %.4f, seed %d)\n", n, f, *seed)
}
