package gcx

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gcx/internal/static"
)

// DefaultCompileCacheCapacity is the entry cap used when NewCompileCache
// is given a non-positive capacity.
const DefaultCompileCacheCapacity = 128

// CompileCache memoizes compilation: repeated requests for the same
// (query text, options) pair are served from a bounded LRU of compiled
// Engines and Workloads instead of re-running the parser and static
// analysis. Because Engines and Workloads are immutable and internally
// pooled, one cached artifact can serve any number of concurrent runs —
// the cache is what turns the library into a hot-query serving layer
// (internal/server builds on it).
//
// Concurrent misses for the same key are coalesced: exactly one
// compilation runs, the other callers wait for its result. Compilation
// errors are cached too (negative caching), so a repeatedly submitted
// malformed query costs one parse, not one per request.
//
// A CompileCache is safe for concurrent use.
type CompileCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	ll      *list.List // front = most recently used; element values are *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	compiles  atomic.Int64
}

// cacheEntry is one cached compilation. The once gate is the
// single-flight: the first goroutine to reach the entry compiles, every
// other goroutine for the same key blocks on the once and reads the
// result.
type cacheEntry struct {
	key  string
	once sync.Once
	eng  *Engine
	wl   *Workload
	err  error
}

// NewCompileCache returns a cache holding at most capacity compiled
// artifacts (DefaultCompileCacheCapacity if capacity < 1).
func NewCompileCache(capacity int) *CompileCache {
	if capacity < 1 {
		capacity = DefaultCompileCacheCapacity
	}
	return &CompileCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
	}
}

// CacheStats reports cache effectiveness. Compiles counts actual
// compilations performed; with request coalescing it can be lower than
// Misses. The JSON field names are stable for /metrics scraping.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Compiles  int64 `json:"compiles"`
	Entries   int   `json:"entries"`
}

// Stats returns a snapshot of the cache counters.
func (cc *CompileCache) Stats() CacheStats {
	cc.mu.Lock()
	n := cc.ll.Len()
	cc.mu.Unlock()
	return CacheStats{
		Hits:      cc.hits.Load(),
		Misses:    cc.misses.Load(),
		Evictions: cc.evictions.Load(),
		Compiles:  cc.compiles.Load(),
		Entries:   n,
	}
}

// Len returns the number of cached artifacts.
func (cc *CompileCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.ll.Len()
}

// Engine returns the cached Engine for (query, opts), compiling it on
// first use.
func (cc *CompileCache) Engine(query string, opts ...Option) (*Engine, error) {
	key, err := cacheKey("engine", []string{query}, opts)
	if err != nil {
		return nil, err
	}
	e := cc.lookup(key)
	e.once.Do(func() {
		cc.compiles.Add(1)
		e.eng, e.err = Compile(query, opts...)
	})
	return e.eng, e.err
}

// Workload returns the cached Workload for (queries, opts), compiling it
// on first use. The member order is part of the key: workloads with the
// same queries in a different order are distinct artifacts (their output
// order differs).
func (cc *CompileCache) Workload(queries []string, opts ...Option) (*Workload, error) {
	key, err := cacheKey("workload", queries, opts)
	if err != nil {
		return nil, err
	}
	e := cc.lookup(key)
	e.once.Do(func() {
		cc.compiles.Add(1)
		e.wl, e.err = CompileWorkload(queries, opts...)
	})
	return e.wl, e.err
}

// cacheKey derives the cache key from the artifact kind, the query texts,
// and the option fingerprint. Applying the options here is cheap and has
// no side effects (WithDTD defers its parse to compilation); compilation
// applies them again. Query texts are length-prefixed so no crafted text
// (e.g. one containing a NUL) can make two different workloads collide on
// one key.
func cacheKey(kind string, queries []string, opts []Option) (string, error) {
	cfg := config{strategy: GCX, static: static.AllOptimizations()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return "", cfg.err
	}
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte(0)
	b.WriteString(cfg.fingerprint())
	for _, q := range queries {
		b.WriteByte(0)
		b.WriteString(strconv.Itoa(len(q)))
		b.WriteByte(':')
		b.WriteString(q)
	}
	return b.String(), nil
}

// lookup finds or inserts the entry for key, updating the LRU order and
// the hit/miss counters, and evicting the least recently used entries
// beyond the capacity. An evicted entry that other goroutines still hold
// stays valid — it is merely no longer findable.
func (cc *CompileCache) lookup(key string) *cacheEntry {
	cc.mu.Lock()
	if el, ok := cc.entries[key]; ok {
		cc.ll.MoveToFront(el)
		cc.mu.Unlock()
		cc.hits.Add(1)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{key: key}
	cc.entries[key] = cc.ll.PushFront(e)
	for cc.ll.Len() > cc.cap {
		old := cc.ll.Back()
		cc.ll.Remove(old)
		delete(cc.entries, old.Value.(*cacheEntry).key)
		cc.evictions.Add(1)
	}
	cc.mu.Unlock()
	cc.misses.Add(1)
	return e
}
