// Papertrace reproduces Figure 2 of the paper ("Active garbage
// collection"): it evaluates the introduction's query over the stream
//
//	<bib><book><title/><author/></book>...</bib>
//
// with the base technique (no Section 6 optimizations, so role numbering
// and buffer contents parallel the paper's figure) and prints what was
// read, the buffer contents with role annotations, and the output after
// every step.
//
// Compare with the paper: after <book> is read the node carries three
// roles (binding of $x, the dos role, binding of $b — the paper's
// book{r3,r5,r6}); after the for$x signOff batch the author is purged and
// only book{r6}/title{r7} remain for the title loop.
package main

import (
	"fmt"
	"log"
	"strings"

	"gcx"
)

const query = `
<r> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </r>`

const stream = `<bib><book><title/><author/></book><book><title/><price>7</price></book></bib>`

func main() {
	eng, err := gcx.Compile(query, gcx.WithoutOptimizations())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== static analysis (compare Figure 1 and the rewritten query) ===")
	fmt.Println(eng.Explain())

	fmt.Println("=== evaluation trace (compare Figure 2) ===")
	var out strings.Builder
	steps, stats, err := eng.Trace(strings.NewReader(stream), &out)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range steps {
		fmt.Printf("step %-3d %s\n", i+1, s.Event)
		if s.Buffer == "" {
			fmt.Println("         (buffer empty)")
			continue
		}
		for _, line := range strings.Split(strings.TrimRight(s.Buffer, "\n"), "\n") {
			fmt.Println("         | " + line)
		}
	}

	fmt.Println()
	fmt.Println("output:", out.String())
	fmt.Printf("peak buffer: %d nodes; %d nodes purged by active GC\n",
		stats.PeakBufferNodes, stats.PurgedTotal)
}
