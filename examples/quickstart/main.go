// Quickstart: compile a query, run it over an XML document, and inspect
// the buffer statistics that the GCX technique minimizes.
package main

import (
	"fmt"
	"log"

	"gcx"
)

const doc = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
  </book>
  <book year="1999">
    <title>Economics of Technology</title>
    <price>129.95</price>
  </book>
</bib>`

func main() {
	// Books without a price, followed by all titles — the running example
	// from the paper's introduction. Attributes (like year) are treated
	// as subelements, so they can be queried as child steps.
	eng, err := gcx.Compile(`
<result> {
  for $bib in /bib return
  ((for $x in $bib/* return
      if (not(exists($x/price))) then $x else ()),
   for $b in $bib/book return $b/title)
} </result>`)
	if err != nil {
		log.Fatal(err)
	}

	out, stats, err := eng.RunString(doc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("result:")
	fmt.Println(out)
	fmt.Println()
	fmt.Printf("tokens read:       %d\n", stats.TokensRead)
	fmt.Printf("nodes buffered:    %d\n", stats.BufferedTotal)
	fmt.Printf("nodes purged:      %d (by active garbage collection)\n", stats.PurgedTotal)
	fmt.Printf("peak buffer:       %d nodes\n", stats.PeakBufferNodes)
	fmt.Printf("signOffs executed: %d\n", stats.SignOffs)
}
