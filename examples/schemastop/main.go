// Schemastop demonstrates schema-aware early region termination: supplying
// the XMark DTD lets blocking cursors stop as soon as the content model
// proves a region is complete, instead of scanning the stream to its end.
//
// This is the capability of the schema-based FluX system the paper
// compares against (Section 7 provided the XMark DTD to FluXQuery); here
// it is layered on top of GCX's buffer minimization: results are
// identical, only the number of tokens read changes.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"gcx"
	"gcx/internal/xmark"
)

// Q13: items in Australia. The regions section is the first child of
// site, so with the DTD the query finishes after reading ~a third of the
// document.
const q13 = `
<q13>{
  for $i in /site/regions/australia/item return
    <item>{ ($i/name, $i/description) }</item>
}</q13>`

func main() {
	var doc bytes.Buffer
	if _, err := xmark.Generate(&doc, xmark.Config{Factor: 0.02, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d bytes\n\n", doc.Len())

	run := func(name string, opts ...gcx.Option) (string, gcx.Stats) {
		eng, err := gcx.Compile(q13, opts...)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var sink countingWriter
		stats, err := eng.Run(bytes.NewReader(doc.Bytes()), &sink)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.1fms   tokens read %8d   peak %5d nodes   output %d bytes\n",
			name, float64(time.Since(start).Microseconds())/1000, stats.TokensRead,
			stats.PeakBufferNodes, stats.OutputBytes)
		return sink.digest(), stats
	}

	d1, plain := run("GCX")
	d2, schema := run("GCX+DTD", gcx.WithDTD(gcx.XMarkDTD))

	fmt.Println()
	if d1 != d2 {
		log.Fatal("outputs differ!")
	}
	fmt.Printf("identical output; the DTD cut tokens read by %.1fx\n",
		float64(plain.TokensRead)/float64(schema.TokensRead))
	fmt.Println("(the content model proves regions cannot reappear after categories,")
	fmt.Println(" so the australia loop terminates without scanning the rest)")
}

// countingWriter hashes output cheaply so we can compare runs without
// keeping it all.
type countingWriter struct {
	n   int64
	sum uint64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		w.sum = w.sum*1099511628211 + uint64(b)
	}
	w.n += int64(len(p))
	return len(p), nil
}

func (w *countingWriter) digest() string {
	return fmt.Sprintf("%d:%x", w.n, w.sum)
}

var _ io.Writer = (*countingWriter)(nil)
