// Auctionjoin runs the paper's join workload (XMark Q8: who bought how
// many items?) on generated auction data and shows why joins are the
// memory-hard case for streaming XQuery: the inner relation
// (closed_auctions) is re-iterated for every person, so its projection
// must remain buffered until the end — active garbage collection can only
// reclaim it when the last iteration has finished.
//
// The example uses this repository's XMark-style generator; any XMark
// document works the same way (see cmd/xmarkgen).
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"gcx"
	"gcx/internal/xmark"
)

const q8 = `
<q8>{
  for $p in /site/people/person return
    <item>{
      ($p/name,
       for $t in /site/closed_auctions/closed_auction return
         if ($t/buyer/person = $p/id) then <bought/> else ())
    }</item>
}</q8>`

// q1 is the streaming-friendly contrast: a single filtered pass.
const q1 = `
<q1>{
  for $b in /site/people/person return
    if ($b/id = "person0") then $b/name else ()
}</q1>`

func main() {
	var doc bytes.Buffer
	if _, err := xmark.Generate(&doc, xmark.Config{Factor: 0.004, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d bytes\n\n", doc.Len())

	run := func(name, query string) gcx.Stats {
		eng, err := gcx.Compile(query)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := eng.Run(bytes.NewReader(doc.Bytes()), io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s peak buffer %7d nodes (%8d bytes), signOffs %d\n",
			name, stats.PeakBufferNodes, stats.PeakBufferBytes, stats.SignOffs)
		return stats
	}

	j := run("Q8", q8)
	s := run("Q1", q1)

	fmt.Println()
	fmt.Printf("the join retains %.0fx more data than the streaming filter:\n",
		float64(j.PeakBufferBytes)/float64(s.PeakBufferBytes))
	fmt.Println("people stream through one at a time, but every closed auction's")
	fmt.Println("buyer and id must stay buffered until the last person is joined —")
	fmt.Println("the behaviour Table 1 of the paper shows for XMark Q8.")
}
