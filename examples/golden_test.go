// Golden-file conformance suite for the examples: each example binary is
// run (`go run ./<name>`) and its combined output compared against the
// committed testdata/<name>.golden, so examples cannot silently rot as
// the engine evolves. Wall-clock timings are scrubbed before comparison;
// everything else the examples print — results, buffer peaks, token
// counts, traces — is deterministic by construction (fixed generator
// seeds).
//
// Regenerate after an intentional output change with:
//
//	go test ./examples -run TestExampleGolden -update
package examples

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current example output")

var exampleNames = []string{
	"auctionjoin",
	"bibfilter",
	"papertrace",
	"quickstart",
	"schemastop",
}

// scrubbers neutralize the only nondeterministic content: wall-clock
// durations (schemastop prints per-run milliseconds). The preceding
// whitespace is folded into the replacement because the examples print
// durations in padded columns — a run crossing a digit-count boundary
// (9.8ms vs 10.2ms) would otherwise shift the padding and flake the
// golden whenever engine performance moves.
var scrubbers = []struct {
	re  *regexp.Regexp
	sub string
}{
	{regexp.MustCompile(`[ \t]*\d+\.\d+ms`), " X.Xms"},
	{regexp.MustCompile(`[ \t]*\d+\.\d+s`), " X.Xs"},
}

func scrub(out []byte) []byte {
	for _, s := range scrubbers {
		out = s.re.ReplaceAll(out, []byte(s.sub))
	}
	return out
}

func TestExampleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	for _, name := range exampleNames {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+name)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run ./%s: %v\n%s", name, err, out.Bytes())
			}
			got := scrub(out.Bytes())
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output of %s differs from %s.\nIf the change is intentional, regenerate with:\n  go test ./examples -run TestExampleGolden -update\n--- got ---\n%s\n--- want ---\n%s",
					name, goldenPath, clip(got), clip(want))
			}
		})
	}
}

// clip bounds diff output so a divergent example does not flood the log.
func clip(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte{}, b[:max]...), []byte("\n... (clipped)")...)
}
