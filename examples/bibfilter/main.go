// Bibfilter compares the three buffering strategies on a larger synthetic
// bibliography: it generates a catalog of books (some priced, some not),
// runs the introduction's filter query under GCX, StaticOnly, and
// FullBuffer, and reports how much each strategy had to buffer.
//
// This demonstrates the paper's central claim: combined static and dynamic
// analysis (GCX) keeps the buffer bounded, projection alone (StaticOnly)
// buffers the whole projected document, and naive in-memory evaluation
// buffers everything.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
)

import "gcx"

const query = `
<cheapskates> {
  for $bib in /bib return
    for $b in $bib/book return
      if (not(exists($b/price))) then $b/title else ()
} </cheapskates>`

// makeCatalog builds a bibliography with n books; every third book has no
// price.
func makeCatalog(n int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<book><title>Book %d</title><author>Author %d</author>", i, i%17)
		if i%3 != 0 {
			fmt.Fprintf(&b, "<price>%d.99</price>", 10+i%90)
		}
		fmt.Fprintf(&b, "<blurb>%s</blurb></book>", strings.Repeat("lorem ipsum ", 8))
	}
	b.WriteString("</bib>")
	return b.String()
}

func main() {
	doc := makeCatalog(5000)
	fmt.Printf("catalog: %d bytes, 5000 books\n\n", len(doc))

	for _, strategy := range []gcx.Strategy{gcx.GCX, gcx.StaticOnly, gcx.FullBuffer} {
		eng, err := gcx.Compile(query, gcx.WithStrategy(strategy))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := eng.Run(strings.NewReader(doc), io.Discard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s peak buffer %8d nodes (%9d bytes), buffered %d, purged %d\n",
			strategy, stats.PeakBufferNodes, stats.PeakBufferBytes,
			stats.BufferedTotal, stats.PurgedTotal)
	}

	fmt.Println("\nGCX holds one book at a time; StaticOnly holds every projected")
	fmt.Println("title/price; FullBuffer holds the entire catalog.")
}
