package gcx

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// The error vocabulary exists so callers classify failures with
// errors.Is/As instead of matching message text. These tests pin the
// three sentinels a serving tier maps to status codes.

func TestErrTooLargeFromBulk(t *testing.T) {
	small := `<bib><book/></bib>`
	big := `<bib>` + strings.Repeat(`<book><title>padding padding padding</title></book>`, 64) + `</bib>`
	stream := small + "\n" + big + "\n" + small
	eng := MustCompile(`<r>{ /bib/book }</r>`)
	var tooLarge, ok int
	_, err := eng.Bulk(CorpusConcat(bytes.NewReader([]byte(stream))), BulkOptions{MaxDocBytes: 256}, func(d BulkDoc) error {
		switch {
		case d.Err == nil:
			ok++
		case errors.Is(d.Err, ErrTooLarge):
			tooLarge++
		default:
			t.Errorf("doc %d: unexpected error class: %v", d.Index, d.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tooLarge != 1 || ok != 2 {
		t.Fatalf("tooLarge=%d ok=%d, want 1 oversized and 2 clean docs", tooLarge, ok)
	}
}

func TestErrCanceledWrapsContextCause(t *testing.T) {
	eng := MustCompile(`<r>{ /bib/book/title }</r>`)

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := eng.RunContext(ctx, strings.NewReader(bibDoc), io.Discard)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want the context.Canceled cause preserved", err)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := eng.RunContext(ctx, strings.NewReader(bibDoc), io.Discard)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		// Deadline must remain distinguishable from plain cancellation —
		// the server maps it to 408, not 400.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want the DeadlineExceeded cause preserved", err)
		}
	})
}

func TestQueryErrorCarriesPosition(t *testing.T) {
	_, err := Compile("<r>{ for $x in\n  /bib/book return }</r>")
	if err == nil {
		t.Fatal("want compile error")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %T %v, want *QueryError", err, err)
	}
	if qe.Line < 1 || qe.Col < 1 {
		t.Fatalf("position not lifted: line=%d col=%d", qe.Line, qe.Col)
	}
	if qe.ID != "" {
		t.Fatalf("solo Compile should have no query id, got %q", qe.ID)
	}
	if qe.Unwrap() == nil {
		t.Fatal("QueryError must unwrap to the parser error")
	}
}
