package gcx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"gcx/internal/corpus"
	"gcx/internal/engine"
	"gcx/internal/workload"
)

// Corpus describes a collection of XML documents for bulk evaluation:
// files on disk, a tar archive, or a concatenated multi-document
// stream. A Corpus is single-use — one Bulk call consumes it (stream
// and archive sources can only be read once).
type Corpus struct {
	build func(maxDocBytes int64) (corpus.Source, error)
	used  bool
}

// CorpusFiles returns a corpus over the given file paths, in order.
// Patterns containing glob metacharacters are expanded ONCE, here, in
// lexical order (a pattern matching nothing falls back to the literal
// path, shell nullglob-off style); a path that turns out to be
// unreadable fails only its own document slot.
func CorpusFiles(patterns ...string) (*Corpus, error) {
	src, err := corpus.Files(patterns...)
	if err != nil {
		return nil, err
	}
	return &Corpus{build: func(int64) (corpus.Source, error) {
		return src, nil
	}}, nil
}

// CorpusTar returns a corpus over the regular-file members of the tar
// archive read from r, in archive order.
func CorpusTar(r io.Reader) *Corpus {
	return &Corpus{build: func(maxDoc int64) (corpus.Source, error) {
		return corpus.Tar(r, maxDoc), nil
	}}
}

// CorpusConcat returns a corpus over a concatenated multi-document XML
// stream: documents are split by a streaming scanner that understands
// just enough XML surface structure (tags, comments, PIs, CDATA,
// DOCTYPE, quoted attributes) to find where each top-level root element
// closes. Prologs between documents belong to the following document;
// whitespace and byte-order marks between documents are dropped.
func CorpusConcat(r io.Reader) *Corpus {
	return &Corpus{build: func(maxDoc int64) (corpus.Source, error) {
		return corpus.Concat(r, maxDoc), nil
	}}
}

// CorpusPaths returns a corpus over a mixed path list, in order: a
// path ending in ".tar" contributes its archive members, anything else
// is a file path or glob pattern (expanded once, here). This is what
// `cmd/gcx -input a.xml -input 'b/*.xml' -input c.tar` builds.
func CorpusPaths(paths ...string) (*Corpus, error) {
	// Resolve every glob now so the corpus evaluated is the corpus that
	// was named at construction — then classify each RESOLVED path, so
	// a glob like 'archives/*.tar' contributes every matched archive.
	// Archives are opened lazily at Bulk time (they need the
	// per-document cap).
	type segment struct {
		tar   string   // archive path, or
		files []string // resolved literal paths
	}
	var segs []segment
	for _, p := range paths {
		resolved, err := corpus.ExpandPatterns(p)
		if err != nil {
			return nil, err
		}
		for _, r := range resolved {
			if strings.HasSuffix(r, ".tar") {
				segs = append(segs, segment{tar: r})
				continue
			}
			if n := len(segs); n > 0 && segs[n-1].tar == "" {
				segs[n-1].files = append(segs[n-1].files, r)
			} else {
				segs = append(segs, segment{files: []string{r}})
			}
		}
	}
	return &Corpus{build: func(maxDoc int64) (corpus.Source, error) {
		var srcs []corpus.Source
		for _, seg := range segs {
			if seg.tar == "" {
				srcs = append(srcs, corpus.FileList(seg.files...))
				continue
			}
			s, err := corpus.TarFile(seg.tar, maxDoc)
			if err != nil {
				for _, prev := range srcs {
					prev.Close()
				}
				return nil, err
			}
			srcs = append(srcs, s)
		}
		return corpus.Chain(srcs...), nil
	}}, nil
}

// DocTooLargeError reports a corpus document that exceeded
// BulkOptions.MaxDocBytes (or a server's per-document cap). Match it in
// BulkDoc.Err with errors.As to distinguish resource-limit failures
// from malformed documents.
type DocTooLargeError = corpus.DocTooLargeError

// BulkOptions tunes a bulk run.
type BulkOptions struct {
	// Workers is the number of concurrent per-document evaluations
	// (≤0: GOMAXPROCS). Each worker draws a pooled run state from the
	// compiled artifact, so per-worker memory is one GCX buffer peak.
	Workers int
	// Window bounds in-flight documents — dispatched but not yet
	// emitted (≤0: 2×Workers). Out-of-order completions wait inside the
	// window, which is what bounds reorder memory.
	Window int
	// MaxDocBytes fails any single document larger than this without
	// evaluating it (0 = no limit). The failure is per-document.
	MaxDocBytes int64
	// Context cancels the run: dispatch stops and in-flight document
	// evaluations are unwound promptly (their reads fail), then Bulk
	// returns the context's error.
	Context context.Context
}

// BulkDoc is one document's outcome, delivered in corpus order.
type BulkDoc struct {
	// Index is the document's position in corpus order, from 0.
	Index int `json:"index"`
	// Name identifies the document: file path, tar member, or "doc[N]".
	Name string `json:"name"`
	// Output holds the serialized result (Engine.Bulk). The bytes are
	// pooled and valid only during the emit call — copy to retain. On a
	// failed document it holds whatever was produced before the
	// failure, exactly as a solo run would have written.
	Output []byte `json:"-"`
	// Outputs holds one result per member query (Workload.Bulk); same
	// lifetime rules as Output.
	Outputs [][]byte `json:"-"`
	// Stats are this document's run statistics (for a workload: the
	// shared-pass aggregate).
	Stats Stats `json:"stats"`
	// Queries is the per-member breakdown (Workload.Bulk only).
	Queries []QueryStats `json:"queries,omitempty"`
	// Err is this document's failure, nil on success.
	Err error `json:"-"`
}

// BulkStats summarizes a bulk run. The JSON field names are stable for
// scraping (cmd/gcx -stats-json, gcxd /bulk aggregate part).
type BulkStats struct {
	// Docs counts emitted documents; Failed counts those with errors.
	Docs   int64 `json:"docs"`
	Failed int64 `json:"failed"`
	// Workers and Window are the effective pool parameters.
	Workers int `json:"workers"`
	Window  int `json:"window"`
	// PeakInFlight is the high watermark of concurrently evaluating
	// documents (how much of the pool the corpus kept busy).
	PeakInFlight int `json:"peak_in_flight"`
	// BusyNanos sums per-document evaluation time across workers;
	// WallNanos is the run's wall-clock time.
	BusyNanos int64 `json:"busy_nanos"`
	WallNanos int64 `json:"wall_nanos"`
	// Aggregate folds the per-document stats: total fields (tokens,
	// buffered, purged, signOffs, output bytes) are summed, while the
	// Peak fields report the largest SINGLE-document peak — the run's
	// memory bound is Workers × that peak, not the sum. Of the timing
	// fields, EvalWallNanos sums per-document evaluation time (BusyNanos
	// measured at the engine, below the pool's dispatch overhead) and
	// TimeToFirstResultNanos reports the WORST single-document
	// time-to-first-result.
	Aggregate Stats `json:"aggregate"`
}

// Utilization reports the fraction of worker capacity the run kept
// busy: 1.0 means every worker evaluated for the full wall time.
func (b BulkStats) Utilization() float64 {
	if b.WallNanos <= 0 || b.Workers <= 0 {
		return 0
	}
	return float64(b.BusyNanos) / (float64(b.WallNanos) * float64(b.Workers))
}

func (b *BulkStats) fold(t corpus.Totals) {
	b.Docs = t.Docs
	b.Failed = t.Failed
	b.Workers = t.Workers
	b.Window = t.Window
	b.PeakInFlight = t.PeakInFlight
	b.BusyNanos = t.BusyNanos
	b.WallNanos = t.WallNanos
}

// addDoc folds one document's stats into the aggregate.
func (b *BulkStats) addDoc(st Stats) {
	b.Aggregate.BufferedTotal += st.BufferedTotal
	b.Aggregate.PurgedTotal += st.PurgedTotal
	b.Aggregate.SignOffs += st.SignOffs
	b.Aggregate.TokensRead += st.TokensRead
	b.Aggregate.OutputBytes += st.OutputBytes
	b.Aggregate.PeakBufferNodes = max(b.Aggregate.PeakBufferNodes, st.PeakBufferNodes)
	b.Aggregate.PeakBufferBytes = max(b.Aggregate.PeakBufferBytes, st.PeakBufferBytes)
	b.Aggregate.EvalWallNanos += st.EvalWallNanos
	b.Aggregate.TimeToFirstResultNanos = max(b.Aggregate.TimeToFirstResultNanos, st.TimeToFirstResultNanos)
}

// errCorpusUsed reports reuse of a consumed corpus.
var errCorpusUsed = errors.New("gcx: corpus already consumed (a Corpus is single-use)")

func (c *Corpus) source(maxDocBytes int64) (corpus.Source, error) {
	if c == nil {
		return nil, errors.New("gcx: nil corpus")
	}
	if c.used {
		return nil, errCorpusUsed
	}
	src, err := c.build(maxDocBytes)
	if err != nil {
		// Nothing was consumed (e.g. an archive failed to open): leave
		// the corpus usable so a retry re-attempts the build instead of
		// misreporting "already consumed".
		return nil, err
	}
	c.used = true
	return src, nil
}

// Bulk evaluates the query over every document of the corpus across a
// bounded worker pool, delivering each document's result to emit in
// corpus order (emit may be nil to discard outputs and keep only the
// stats). Per-document failures — unreadable file, oversized member,
// malformed XML, evaluation error — are isolated in that document's
// BulkDoc.Err; sibling documents are byte-identical to solo runs. The
// returned error is non-nil only for whole-corpus failures: a broken
// source stream, an emit error, or context cancellation.
func (e *Engine) Bulk(c *Corpus, opts BulkOptions, emit func(BulkDoc) error) (BulkStats, error) {
	src, err := c.source(opts.MaxDocBytes)
	if err != nil {
		return BulkStats{}, err
	}
	defer src.Close()

	var bs BulkStats
	totals, err := corpus.Run(src, corpus.Options{
		Workers:     opts.Workers,
		Window:      opts.Window,
		Outputs:     1,
		MaxDocBytes: opts.MaxDocBytes,
		Context:     opts.Context,
	}, func(in io.Reader, outs []io.Writer) (engine.Stats, error) {
		return e.c.Run(in, outs[0])
	}, func(r *corpus.Result[engine.Stats]) error {
		doc := BulkDoc{Index: r.Index, Name: r.Name, Stats: convertStats(r.Value), Err: r.Err}
		if len(r.Outs) > 0 {
			doc.Output = r.Outs[0].Bytes()
		}
		bs.addDoc(doc.Stats)
		if emit == nil {
			return nil
		}
		return emit(doc)
	})
	bs.fold(totals)
	return bs, err
}

// Bulk evaluates every member query over every document of the corpus:
// each document gets one shared-stream pass (tokenize/project/buffer
// once for all members), documents run in parallel across the worker
// pool, and results arrive in corpus order. See Engine.Bulk for the
// isolation and error contract.
func (w *Workload) Bulk(c *Corpus, opts BulkOptions, emit func(BulkDoc) error) (BulkStats, error) {
	src, err := c.source(opts.MaxDocBytes)
	if err != nil {
		return BulkStats{}, err
	}
	defer src.Close()

	type payload struct {
		st workload.Stats
		qs []workload.QueryStats
	}
	var bs BulkStats
	totals, err := corpus.Run(src, corpus.Options{
		Workers:     opts.Workers,
		Window:      opts.Window,
		Outputs:     w.Len(),
		MaxDocBytes: opts.MaxDocBytes,
		Context:     opts.Context,
	}, func(in io.Reader, outs []io.Writer) (payload, error) {
		st, qs, err := w.c.Run(in, outs)
		return payload{st: st, qs: qs}, err
	}, func(r *corpus.Result[payload]) error {
		ws := convertWorkloadStats(r.Value.st, r.Value.qs)
		doc := BulkDoc{Index: r.Index, Name: r.Name, Stats: ws.Aggregate, Queries: ws.Queries, Err: r.Err}
		if len(r.Outs) > 0 {
			doc.Outputs = make([][]byte, len(r.Outs))
			for i, b := range r.Outs {
				doc.Outputs[i] = b.Bytes()
			}
		}
		bs.addDoc(doc.Stats)
		if emit == nil {
			return nil
		}
		return emit(doc)
	})
	bs.fold(totals)
	return bs, err
}

// BulkError summarizes a failed document for error lists (gcxd /bulk
// aggregate part, cmd/gcx stderr).
func BulkError(d BulkDoc) string {
	return fmt.Sprintf("%s (doc %d): %v", d.Name, d.Index, d.Err)
}
