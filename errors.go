package gcx

// Typed errors of the public API. Service layers (gcxd) classify run
// failures with errors.Is/errors.As against these instead of matching
// message strings.

import (
	"errors"
	"fmt"

	"gcx/internal/corpus"
	"gcx/internal/xqparser"
)

// ErrTooLarge matches (errors.Is) every failure caused by a configured
// size limit: a bulk corpus document over BulkOptions.MaxDocBytes (the
// concrete error remains a *DocTooLargeError), or any future input cap.
// Service layers map it to 413.
var ErrTooLarge = corpus.ErrTooLarge

// ErrCanceled matches (errors.Is) a run abandoned through its context:
// RunContext wraps the context's cancellation into the stream error that
// unwinds the evaluation. The underlying context.Canceled or
// context.DeadlineExceeded cause stays matchable through errors.Is too,
// so callers can distinguish client-gone from timeout.
var ErrCanceled = errors.New("gcx: run canceled")

// canceledError is the concrete error a canceled RunContext returns: it
// matches ErrCanceled and unwraps to the context's own error.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return "gcx: run canceled: " + e.cause.Error() }
func (e *canceledError) Unwrap() error        { return e.cause }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// QueryError attributes a compilation failure to a query: the registry
// subscription id that submitted it (empty for direct Compile calls) and,
// for syntax errors, the 1-based source position. Match with errors.As.
type QueryError struct {
	// ID is the subscription or registry id of the failing query; empty
	// when the query was compiled directly.
	ID string
	// Line and Col locate a syntax error in the query text (1-based);
	// both are 0 for post-parse failures (normalization, static analysis).
	Line, Col int
	// Err is the underlying compilation error.
	Err error
}

func (e *QueryError) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("gcx: query %q: %v", e.ID, e.Err)
	}
	return fmt.Sprintf("gcx: query: %v", e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// queryError wraps a compilation failure into a *QueryError, lifting the
// parser's source position when there is one. nil passes through.
func queryError(id string, err error) error {
	if err == nil {
		return nil
	}
	qe := &QueryError{ID: id, Err: err}
	var pe *xqparser.Error
	if errors.As(err, &pe) {
		qe.Line, qe.Col = pe.Line, pe.Col
	}
	return qe
}
