package gcx

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRuns: each evaluation is single-threaded (the paper's
// strictly sequential semantics), but a compiled Engine holds only
// immutable analysis results, so independent runs may proceed in parallel
// goroutines.
func TestConcurrentRuns(t *testing.T) {
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)

	var doc strings.Builder
	doc.WriteString("<bib>")
	for i := 0; i < 300; i++ {
		doc.WriteString("<book><title>T</title><price>5</price></book>")
		doc.WriteString("<book><title>U</title></book>")
	}
	doc.WriteString("</bib>")

	want, _, err := eng.RunString(doc.String())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := eng.RunString(doc.String())
			if err != nil {
				errs <- err
				return
			}
			if got != want {
				errs <- &mismatchError{}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent run output mismatch" }
