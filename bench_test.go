package gcx

// Benchmarks regenerating the paper's evaluation (Table 1) at test scale,
// plus ablation benches for the Section 6 optimizations and pipeline
// micro-benchmarks. The full-size sweep (10-200MB documents, as in the
// paper) is driven by cmd/gcxbench; these benches default to a 2MB
// document so `go test -bench=.` stays laptop-friendly. Set
// GCX_BENCH_MB=10 (or more) to scale up.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"gcx/internal/queries"
	"gcx/internal/xmark"
)

var benchDoc struct {
	once sync.Once
	data []byte
}

func benchDocument(b *testing.B) []byte {
	benchDoc.once.Do(func() {
		mb := 2.0
		if s := os.Getenv("GCX_BENCH_MB"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				mb = v
			}
		}
		var buf bytes.Buffer
		_, err := xmark.Generate(&buf, xmark.Config{
			Factor: xmark.FactorForSize(int64(mb * (1 << 20))),
			Seed:   1,
		})
		if err != nil {
			b.Fatalf("generate: %v", err)
		}
		benchDoc.data = buf.Bytes()
	})
	return benchDoc.data
}

func runBench(b *testing.B, query string, opts ...Option) {
	doc := benchDocument(b)
	eng, err := Compile(query, opts...)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	var peakNodes, peakBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := eng.Run(bytes.NewReader(doc), io.Discard)
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		peakNodes, peakBytes = st.PeakBufferNodes, st.PeakBufferBytes
	}
	b.ReportMetric(float64(peakBytes)/1024, "peakKB")
	b.ReportMetric(float64(peakNodes), "peakNodes")
}

// BenchmarkTable1 regenerates the paper's Table 1: every XMark query under
// every engine. Reported metrics: throughput (MB/s of input), wall time
// per evaluation, and the buffer high watermark (peakKB / peakNodes — the
// paper's memory column).
func BenchmarkTable1(b *testing.B) {
	for _, q := range queries.All() {
		for _, s := range []Strategy{GCX, StaticOnly, FullBuffer} {
			b.Run(fmt.Sprintf("%s/%s", q.Name, s), func(b *testing.B) {
				runBench(b, q.Text, WithStrategy(s))
			})
		}
	}
}

// BenchmarkAblation isolates the Section 6 optimizations on Q1 and Q13
// (the design choices DESIGN.md calls out): early updates, aggregate
// roles, redundant-role elimination.
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"AllOptimizations", nil},
		{"NoEarlyUpdates", []Option{WithoutEarlyUpdates()}},
		{"NoAggregateRoles", []Option{WithoutAggregateRoles()}},
		{"NoRoleElimination", []Option{WithoutRedundantRoleElimination()}},
		{"BaseTechnique", []Option{WithoutOptimizations()}},
	}
	for _, q := range []queries.Query{queries.Q1, queries.Q13} {
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/%s", q.Name, c.name), func(b *testing.B) {
				runBench(b, q.Text, c.opts...)
			})
		}
	}
}

// BenchmarkParallelRuns exercises the serving scenario: many goroutines
// sharing one compiled Engine, each run drawing a recycled run state from
// the engine's pool. allocs/op is the headline number — after warm-up it
// must stay near the per-run floor (text copies into the buffer), not
// scale with the runtime structures.
func BenchmarkParallelRuns(b *testing.B) {
	doc := benchDocument(b)
	eng, err := Compile(queries.Q1.Text)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	// Warm the pool before measuring.
	if _, err := eng.Run(bytes.NewReader(doc), io.Discard); err != nil {
		b.Fatalf("warm-up run: %v", err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := bytes.NewReader(doc)
		for pb.Next() {
			r.Reset(doc)
			if _, err := eng.Run(r, io.Discard); err != nil {
				b.Errorf("run: %v", err)
				return
			}
		}
	})
}

// BenchmarkCompile measures query compilation (parse, normalize, rewrite,
// static analysis) — a per-query one-time cost.
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(queries.Q8.Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProjectionOnly isolates the stream pre-projector: a query whose
// output is empty on the data still forces full projection work.
func BenchmarkProjectionOnly(b *testing.B) {
	// No person has the id "no-such-person": the run touches every people
	// token but produces no output.
	runBench(b, `<q>{ for $p in /site/people/person return
	  if ($p/id = "no-such-person") then $p/name else () }</q>`)
}

// BenchmarkSchema compares plain GCX with schema-aware early termination
// (GCX + the XMark DTD): results are identical, but the DTD lets cursors
// stop reading once their region is provably complete.
func BenchmarkSchema(b *testing.B) {
	for _, q := range []queries.Query{queries.Q1, queries.Q13} {
		b.Run(q.Name+"/GCX", func(b *testing.B) {
			runBench(b, q.Text)
		})
		b.Run(q.Name+"/GCX+DTD", func(b *testing.B) {
			runBench(b, q.Text, WithDTD(XMarkDTD))
		})
	}
}
