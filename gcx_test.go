package gcx

import (
	"strings"
	"testing"
)

const bibDoc = `<bib>
  <book><title>Streams</title><author>S. One</author></book>
  <book><title>Buffers</title><price>30</price></book>
</bib>`

func TestQuickstart(t *testing.T) {
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)
	got, st, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<out><title>Buffers</title></out>` {
		t.Fatalf("got %s", got)
	}
	if st.PeakBufferNodes <= 0 || st.SignOffs == 0 || st.PurgedTotal == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestStrategiesAgree(t *testing.T) {
	query := `<out>{ for $b in /bib/book return <t>{ $b/title }</t> }</out>`
	var outs []string
	for _, s := range []Strategy{GCX, StaticOnly, FullBuffer} {
		eng := MustCompile(query, WithStrategy(s))
		got, _, err := eng.RunString(bibDoc)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		outs = append(outs, got)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("strategies disagree: %v", outs)
	}
}

func TestAblationOptions(t *testing.T) {
	query := `<out>{ for $b in /bib/book return $b }</out>`
	for _, opt := range [][]Option{
		{WithoutEarlyUpdates()},
		{WithoutAggregateRoles()},
		{WithoutRedundantRoleElimination()},
		{WithoutOptimizations()},
	} {
		eng := MustCompile(query, opt...)
		got, _, err := eng.RunString(bibDoc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(got, "<title>Streams</title>") {
			t.Fatalf("got %s", got)
		}
	}
}

func TestExplain(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)
	ex := eng.Explain()
	for _, want := range []string{"projection tree", "signOff", "variable tree"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("explain missing %q", want)
		}
	}
}

func TestTrace(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`,
		WithoutOptimizations())
	var out strings.Builder
	steps, _, err := eng.Trace(strings.NewReader(bibDoc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no trace steps recorded")
	}
	var sawSignoff bool
	for _, s := range steps {
		if strings.HasPrefix(s.Event, "signOff(") {
			sawSignoff = true
		}
	}
	if !sawSignoff {
		t.Fatal("trace must include signOff events")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(`<out>{ $undefined }</out>`); err == nil {
		t.Fatal("want compile error")
	}
	if _, err := Compile(`not a query`); err == nil {
		t.Fatal("want parse error")
	}
}

func TestRepeatedRuns(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)
	a, _, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("compiled engines must be reusable")
	}
}
