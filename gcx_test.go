package gcx

import (
	"fmt"
	"strings"
	"testing"
)

const bibDoc = `<bib>
  <book><title>Streams</title><author>S. One</author></book>
  <book><title>Buffers</title><price>30</price></book>
</bib>`

func TestQuickstart(t *testing.T) {
	eng := MustCompile(`<out>{
	    for $b in /bib/book return
	        if (exists($b/price)) then $b/title else ()
	}</out>`)
	got, st, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if got != `<out><title>Buffers</title></out>` {
		t.Fatalf("got %s", got)
	}
	if st.PeakBufferNodes <= 0 || st.SignOffs == 0 || st.PurgedTotal == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestStrategiesAgree(t *testing.T) {
	query := `<out>{ for $b in /bib/book return <t>{ $b/title }</t> }</out>`
	var outs []string
	for _, s := range []Strategy{GCX, StaticOnly, FullBuffer} {
		eng := MustCompile(query, WithStrategy(s))
		got, _, err := eng.RunString(bibDoc)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		outs = append(outs, got)
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("strategies disagree: %v", outs)
	}
}

func TestAblationOptions(t *testing.T) {
	query := `<out>{ for $b in /bib/book return $b }</out>`
	for _, opt := range [][]Option{
		{WithoutEarlyUpdates()},
		{WithoutAggregateRoles()},
		{WithoutRedundantRoleElimination()},
		{WithoutOptimizations()},
	} {
		eng := MustCompile(query, opt...)
		got, _, err := eng.RunString(bibDoc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(got, "<title>Streams</title>") {
			t.Fatalf("got %s", got)
		}
	}
}

func TestExplain(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)
	ex := eng.Explain()
	for _, want := range []string{"projection tree", "signOff", "variable tree"} {
		if !strings.Contains(ex, want) {
			t.Fatalf("explain missing %q", want)
		}
	}
}

func TestTrace(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`,
		WithoutOptimizations())
	var out strings.Builder
	steps, _, err := eng.Trace(strings.NewReader(bibDoc), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no trace steps recorded")
	}
	var sawSignoff bool
	for _, s := range steps {
		if strings.HasPrefix(s.Event, "signOff(") {
			sawSignoff = true
		}
	}
	if !sawSignoff {
		t.Fatal("trace must include signOff events")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(`<out>{ $undefined }</out>`); err == nil {
		t.Fatal("want compile error")
	}
	if _, err := Compile(`not a query`); err == nil {
		t.Fatal("want parse error")
	}
}

func TestRepeatedRuns(t *testing.T) {
	eng := MustCompile(`<out>{ for $b in /bib/book return $b/title }</out>`)
	a, _, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := eng.RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("compiled engines must be reusable")
	}
}

func TestWorkloadPublicAPI(t *testing.T) {
	queries := []string{
		`<titles>{ for $b in /bib/book return $b/title }</titles>`,
		`<cheap>{ for $b in /bib/book return if ($b/price < 50) then $b/title else () }</cheap>`,
		`<all>{ for $b in /bib/book return $b }</all>`,
	}
	// ReadBatch 1 reproduces the solo token-demand schedule exactly, so
	// the aggregate token count can be compared to a solo run token for
	// token (the default batch may read up to one batch further).
	w := MustCompileWorkload(queries, WithReadBatch(1))
	if w.Len() != len(queries) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(queries))
	}
	results, st, err := w.RunStrings(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		solo, _, err := MustCompile(q).RunString(bibDoc)
		if err != nil {
			t.Fatalf("query %d solo: %v", i, err)
		}
		if results[i] != solo {
			t.Errorf("query %d: workload output %q differs from solo %q", i, results[i], solo)
		}
	}
	// The shared pass reads the input once: the aggregate token count must
	// equal one solo pass, not one per member query.
	_, soloStats, err := MustCompile(queries[2]).RunString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.TokensRead != soloStats.TokensRead {
		t.Errorf("workload read %d tokens, one solo pass reads %d", st.Aggregate.TokensRead, soloStats.TokensRead)
	}
	if len(st.Queries) != len(queries) {
		t.Fatalf("per-query stats: got %d entries", len(st.Queries))
	}
	var sum int64
	for i, q := range st.Queries {
		if q.Err != nil {
			t.Errorf("query %d: %v", i, q.Err)
		}
		if q.RoleAssignments != q.RoleRemovals {
			t.Errorf("query %d roles unbalanced: %d/%d", i, q.RoleAssignments, q.RoleRemovals)
		}
		if q.OutputBytes != int64(len(results[i])) {
			t.Errorf("query %d OutputBytes = %d, want %d", i, q.OutputBytes, len(results[i]))
		}
		sum += q.OutputBytes
	}
	if st.Aggregate.OutputBytes != sum {
		t.Errorf("aggregate OutputBytes %d != per-query sum %d", st.Aggregate.OutputBytes, sum)
	}
}

func TestWorkloadStrategiesAgree(t *testing.T) {
	queries := []string{
		`<t>{ for $b in /bib/book return $b/title }</t>`,
		`<p>{ for $b in /bib/book return if (exists($b/price)) then $b/price else () }</p>`,
	}
	var want []string
	for _, s := range []Strategy{GCX, StaticOnly, FullBuffer} {
		w := MustCompileWorkload(queries, WithStrategy(s))
		got, _, err := w.RunStrings(bibDoc)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%v query %d: %q != %q", s, i, got[i], want[i])
			}
		}
	}
}

func TestWorkloadConcurrentRuns(t *testing.T) {
	w := MustCompileWorkload([]string{
		`<t>{ for $b in /bib/book return $b/title }</t>`,
		`<a>{ for $b in /bib/book return $b/author }</a>`,
	})
	want, _, err := w.RunStrings(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				got, _, err := w.RunStrings(bibDoc)
				if err != nil {
					done <- err
					return
				}
				for j := range got {
					if got[j] != want[j] {
						done <- fmt.Errorf("query %d: got %q want %q", j, got[j], want[j])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
